#include <gtest/gtest.h>

#include <cmath>

#include "graph/builder.h"
#include "graph/executor.h"
#include "core/bench.h"
#include "quant/quantize_pass.h"

namespace ngb {
namespace {

Graph
mlpGraph(int64_t d = 64)
{
    Graph g;
    g.setName("mlp");
    GraphBuilder b(g);
    Value x = b.input(Shape{2, d});
    Value h = b.linear(x, d * 2, true, "fc1");
    h = b.gelu(h);
    h = b.linear(h, d, true, "fc2");
    h = b.layerNorm(h);
    b.output(h);
    return g;
}

TEST(QuantizePassTest, ReplacesEligibleLinears)
{
    Graph g = mlpGraph(64);
    QuantizeConfig cfg;
    cfg.minInFeatures = 32;
    cfg.outlierFraction = 0.0;
    QuantizeStats st;
    Graph q = quantizeLlmInt8(g, cfg, &st);

    EXPECT_EQ(st.linearsQuantized, 2);
    EXPECT_EQ(st.linearsKept, 0);
    EXPECT_GT(st.nodesAfter, st.nodesBefore);
    int int8 = 0, quant = 0, dequant = 0, fp = 0;
    for (const Node &n : q.nodes()) {
        if (n.kind == OpKind::Int8Linear)
            ++int8;
        if (n.kind == OpKind::Quantize)
            ++quant;
        if (n.kind == OpKind::Dequantize)
            ++dequant;
        if (n.kind == OpKind::Linear)
            ++fp;
    }
    EXPECT_EQ(int8, 2);
    EXPECT_EQ(quant, 2);
    EXPECT_EQ(dequant, 2);
    EXPECT_EQ(fp, 0);
}

TEST(QuantizePassTest, MinInFeaturesGuard)
{
    Graph g = mlpGraph(16);  // below the threshold
    QuantizeConfig cfg;
    cfg.minInFeatures = 512;
    QuantizeStats st;
    Graph q = quantizeLlmInt8(g, cfg, &st);
    EXPECT_EQ(st.linearsQuantized, 0);
    EXPECT_EQ(st.linearsKept, 2);
    EXPECT_EQ(st.nodesBefore, st.nodesAfter);
}

TEST(QuantizePassTest, OutlierDecompositionAddsSidePath)
{
    Graph g = mlpGraph(64);
    QuantizeConfig cfg;
    cfg.minInFeatures = 32;
    cfg.outlierFraction = 0.05;
    QuantizeStats st;
    Graph q = quantizeLlmInt8(g, cfg, &st);
    int fp_linear = 0, slices = 0, adds_named_merge = 0;
    for (const Node &n : q.nodes()) {
        if (n.kind == OpKind::Linear)
            ++fp_linear;
        if (n.kind == OpKind::Slice &&
            n.name.find("outlier") != std::string::npos)
            ++slices;
        if (n.name.find(".merge") != std::string::npos)
            ++adds_named_merge;
    }
    EXPECT_EQ(fp_linear, 2);  // fp16 outlier GEMMs
    EXPECT_EQ(slices, 2);
    EXPECT_EQ(adds_named_merge, 2);
    // Outlier width = ceil-ish of 5% of 64 and 128.
    for (const Node &n : q.nodes())
        if (n.kind == OpKind::Linear && n.paramShapes[0][0] == 128)
            EXPECT_EQ(n.paramShapes[0][1], 3);  // 64 * 0.05
}

TEST(QuantizePassTest, GraphStillExecutes)
{
    Graph g = mlpGraph(64);
    QuantizeConfig cfg;
    cfg.minInFeatures = 32;
    Graph q = quantizeLlmInt8(g, cfg);

    Executor ex(q);
    auto out = ex.run({Tensor::randn(Shape{2, 64}, 91)});
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].shape(), (Shape{2, 64}));
    for (int64_t i = 0; i < out[0].numel(); ++i)
        EXPECT_TRUE(std::isfinite(out[0].flatAt(i)));
}

TEST(QuantizePassTest, OutputsRemapped)
{
    Graph g = mlpGraph(64);
    QuantizeConfig cfg;
    cfg.minInFeatures = 32;
    Graph q = quantizeLlmInt8(g, cfg);
    ASSERT_EQ(q.graphOutputs().size(), 1u);
    // Output must reference a node inside the new graph.
    EXPECT_LT(q.graphOutputs()[0].node, static_cast<int>(q.size()));
    EXPECT_EQ(q.shapeOf(q.graphOutputs()[0]),
              g.shapeOf(g.graphOutputs()[0]));
}

TEST(QuantizePassTest, AddsNonGemmOps)
{
    Graph g = mlpGraph(128);
    auto before = g.stats();
    QuantizeConfig cfg;
    cfg.minInFeatures = 32;
    QuantizeStats st;
    Graph q = quantizeLlmInt8(g, cfg, &st);
    auto after = q.stats();
    // The paper's central quantization finding: extra non-GEMM work.
    EXPECT_GT(after.numNonGemmOps, before.numNonGemmOps);
    EXPECT_EQ(st.addedNonGemmOps,
              after.numNonGemmOps - before.numNonGemmOps);
    // Q/DQ ops present.
    EXPECT_GT(after.opsByCategory[OpCategory::QDQ], 0);
}

TEST(QuantizePassTest, QuantizedLinearAccuracyBound)
{
    // End-to-end: quantized MLP output stays close to the fp32 MLP
    // (same deterministic weights by node position for the first fc).
    Graph g;
    GraphBuilder b(g);
    Value x = b.input(Shape{4, 64});
    Value y = b.linear(x, 32, false, "fc");
    b.output(y);

    QuantizeConfig cfg;
    cfg.minInFeatures = 32;
    cfg.outlierFraction = 0.0;
    Graph q = quantizeLlmInt8(g, cfg);

    Tensor in = Tensor::randn(Shape{4, 64}, 92);
    Executor exf(g), exq(q);
    auto yf = exf.run({in});
    auto yq = exq.run({in});
    // Different param seeds (node ids shift), so compare magnitudes
    // only loosely: both finite and same shape.
    EXPECT_EQ(yf[0].shape(), yq[0].shape());
    for (int64_t i = 0; i < yq[0].numel(); ++i)
        EXPECT_TRUE(std::isfinite(yq[0].flatAt(i)));
}

TEST(QuantizePassTest, PreservesNonLinearOpsUntouched)
{
    Graph g = mlpGraph(64);
    QuantizeConfig cfg;
    cfg.minInFeatures = 32;
    Graph q = quantizeLlmInt8(g, cfg);
    int gelu = 0, ln = 0;
    for (const Node &n : q.nodes()) {
        gelu += n.kind == OpKind::GELU;
        ln += n.kind == OpKind::LayerNorm;
    }
    EXPECT_EQ(gelu, 1);
    EXPECT_EQ(ln, 1);
}

TEST(WeightOnlyQuantTest, NoGraphChangesOnlyNarrowWeights)
{
    Graph g = mlpGraph(64);
    QuantizeConfig cfg;
    cfg.method = QuantMethod::WeightOnlyInt8;
    cfg.minInFeatures = 32;
    QuantizeStats st;
    Graph q = quantizeLlmInt8(g, cfg, &st);

    EXPECT_EQ(st.linearsQuantized, 2);
    EXPECT_EQ(st.addedNonGemmOps, 0);
    EXPECT_EQ(st.nodesBefore, st.nodesAfter);
    for (const Node &n : q.nodes()) {
        EXPECT_NE(n.kind, OpKind::Quantize);
        EXPECT_NE(n.kind, OpKind::Dequantize);
        if (n.kind == OpKind::Linear) {
            EXPECT_EQ(n.paramDtype, DType::I8);
            // Parameter traffic shrank 4x vs fp32.
            const Node &orig = g.node(n.id);
            EXPECT_DOUBLE_EQ(n.cost.bytesParam,
                             orig.cost.bytesParam / 4.0);
        }
    }
}

TEST(WeightOnlyQuantTest, StillExecutes)
{
    Graph g = mlpGraph(64);
    QuantizeConfig cfg;
    cfg.method = QuantMethod::WeightOnlyInt8;
    cfg.minInFeatures = 32;
    Graph q = quantizeLlmInt8(g, cfg);
    Executor ex(q);
    auto out = ex.run({Tensor::randn(Shape{2, 64}, 93)});
    EXPECT_EQ(out[0].shape(), (Shape{2, 64}));
    for (int64_t i = 0; i < out[0].numel(); ++i)
        EXPECT_TRUE(std::isfinite(out[0].flatAt(i)));
}

TEST(WeightOnlyQuantTest, DoesNotAggravateNonGemmShare)
{
    // The contrast with LLM.int8(): weight-only keeps the operator
    // mix identical, so the non-GEMM share cannot increase by more
    // than the GEMM speedup itself shifts it.
    BenchConfig c;
    c.model = "llama3";
    c.seqLen = 256;
    double fp = Bench::run(c).nonGemmPct();
    c.quantize = true;
    c.quantMethod = QuantMethod::WeightOnlyInt8;
    double w8 = Bench::run(c).nonGemmPct();
    c.quantMethod = QuantMethod::LlmInt8;
    double q8 = Bench::run(c).nonGemmPct();
    EXPECT_LT(w8, fp + 12.0);
    EXPECT_GT(q8, w8 + 10.0);
}

}  // namespace
}  // namespace ngb
