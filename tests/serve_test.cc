#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <set>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "graph/executor.h"
#include "models/registry.h"
#include "profiler/serve_report.h"
#include "runtime/request_util.h"
#include "serve/dynamic_batcher.h"
#include "serve/engine.h"
#include "serve/load_gen.h"
#include "serve/request_queue.h"
#include "serve/serve_driver.h"

namespace ngb {
namespace {

using namespace serve;
using Clock = std::chrono::steady_clock;

// ---- traffic mix + load generation ----------------------------------------

TEST(LoadGenTest, ParseMixWeightsAndDefaults)
{
    auto mix = parseMix("vit_b:4,gpt2:1");
    ASSERT_EQ(mix.size(), 2u);
    EXPECT_EQ(mix[0].model, "vit_b");
    EXPECT_DOUBLE_EQ(mix[0].weight, 4);
    EXPECT_EQ(mix[1].model, "gpt2");
    EXPECT_DOUBLE_EQ(mix[1].weight, 1);

    auto uniform = parseMix("vit_b,swin_t");
    ASSERT_EQ(uniform.size(), 2u);
    EXPECT_DOUBLE_EQ(uniform[0].weight, 1);
    EXPECT_DOUBLE_EQ(uniform[1].weight, 1);

    EXPECT_THROW(parseMix(""), std::runtime_error);
    EXPECT_THROW(parseMix("vit_b:abc"), std::runtime_error);
    EXPECT_THROW(parseMix("vit_b:-1"), std::runtime_error);
    EXPECT_THROW(parseMix(":3"), std::runtime_error);
    EXPECT_THROW(parseMix("vit_b:4x"), std::runtime_error);  // junk tail
}

TEST(LoadGenTest, PickModelRespectsWeights)
{
    auto mix = parseMix("a:3,b:1");
    EXPECT_EQ(pickModel(mix, 0.0), "a");
    EXPECT_EQ(pickModel(mix, 0.74), "a");
    EXPECT_EQ(pickModel(mix, 0.76), "b");
    EXPECT_EQ(pickModel(mix, 0.999), "b");
}

TEST(LoadGenTest, PoissonTraceIsDeterministicUnderSeed)
{
    auto mix = parseMix("vit_b:4,gpt2:1");
    auto a = poissonTrace(mix, 500, 1.0, 7);
    auto b = poissonTrace(mix, 500, 1.0, 7);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_DOUBLE_EQ(a[i].atUs, b[i].atUs);
        EXPECT_EQ(a[i].model, b[i].model);
        EXPECT_EQ(a[i].seed, b[i].seed);
    }

    auto c = poissonTrace(mix, 500, 1.0, 8);
    bool differs = c.size() != a.size();
    for (size_t i = 0; !differs && i < a.size(); ++i)
        differs = a[i].seed != c[i].seed || a[i].atUs != c[i].atUs;
    EXPECT_TRUE(differs);
}

TEST(LoadGenTest, PoissonTraceMatchesRateAndHorizon)
{
    auto mix = parseMix("vit_b");
    auto trace = poissonTrace(mix, 1000, 1.0, 123);
    // 1000 expected arrivals, sigma ~32: [800, 1200] is > 6 sigma.
    EXPECT_GT(trace.size(), 800u);
    EXPECT_LT(trace.size(), 1200u);
    std::set<uint64_t> seeds;
    double prev = -1;
    for (const TraceEvent &ev : trace) {
        EXPECT_GE(ev.atUs, 0);
        EXPECT_LT(ev.atUs, 1e6);
        EXPECT_GE(ev.atUs, prev);  // arrivals are time-ordered
        prev = ev.atUs;
        seeds.insert(ev.seed);
    }
    EXPECT_EQ(seeds.size(), trace.size());  // payload seeds distinct
}

// ---- RequestQueue ----------------------------------------------------------

ServeRequest
makeReq(const std::string &model, uint64_t id = 0)
{
    ServeRequest r;
    r.id = id;
    r.model = model;
    r.seed = id;
    return r;
}

TEST(RequestQueueTest, RejectPolicyShedsAtDepth)
{
    RequestQueue q(2, AdmissionPolicy::Reject);
    EXPECT_TRUE(q.push(makeReq("m", 0)));
    EXPECT_TRUE(q.push(makeReq("m", 1)));
    EXPECT_FALSE(q.push(makeReq("m", 2)));
    EXPECT_EQ(q.depth(), 2u);
    auto batch = q.popBatch(8, 0);
    EXPECT_EQ(batch.size(), 2u);
}

TEST(RequestQueueTest, BlockPolicyWaitsForSpace)
{
    RequestQueue q(1, AdmissionPolicy::Block);
    EXPECT_TRUE(q.push(makeReq("m", 0)));
    std::atomic<bool> pushed{false};
    std::thread producer([&] {
        EXPECT_TRUE(q.push(makeReq("m", 1)));  // blocks until pop
        pushed = true;
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    EXPECT_FALSE(pushed.load());
    auto batch = q.popBatch(1, 0);
    ASSERT_EQ(batch.size(), 1u);
    EXPECT_EQ(batch[0].id, 0u);
    producer.join();
    EXPECT_TRUE(pushed.load());
    EXPECT_EQ(q.depth(), 1u);
}

TEST(RequestQueueTest, CloseUnblocksAndDrains)
{
    RequestQueue q(8, AdmissionPolicy::Block);
    EXPECT_TRUE(q.push(makeReq("m", 0)));
    EXPECT_TRUE(q.push(makeReq("m", 1)));
    q.close();
    EXPECT_FALSE(q.push(makeReq("m", 2)));  // no admission after close
    auto batch = q.popBatch(8, 1000000);    // drains without deadline wait
    EXPECT_EQ(batch.size(), 2u);
    EXPECT_TRUE(q.popBatch(8, 1000000).empty());
}

TEST(RequestQueueTest, BatchClosesAtMaxBatchImmediately)
{
    RequestQueue q(64, AdmissionPolicy::Block);
    for (uint64_t i = 0; i < 6; ++i)
        ASSERT_TRUE(q.push(makeReq("m", i)));
    bool byTimeout = true;
    auto t0 = Clock::now();
    auto batch = q.popBatch(4, 60'000'000, &byTimeout);  // 60 s deadline
    double ms = std::chrono::duration<double, std::milli>(Clock::now() -
                                                          t0)
                    .count();
    EXPECT_EQ(batch.size(), 4u);
    EXPECT_FALSE(byTimeout);
    EXPECT_LT(ms, 1000);  // size-closed, not deadline-closed
    for (uint64_t i = 0; i < batch.size(); ++i)
        EXPECT_EQ(batch[i].id, i);  // FIFO within the model
}

TEST(RequestQueueTest, BatchClosesOnDeadlineWithPartialBatch)
{
    RequestQueue q(64, AdmissionPolicy::Block);
    // t0 before the pushes: the deadline is anchored at the first
    // request's arrival stamp, so measuring from after the pushes
    // could flake under a preempted (sanitized CI) scheduler.
    auto t0 = Clock::now();
    ASSERT_TRUE(q.push(makeReq("m", 0)));
    ASSERT_TRUE(q.push(makeReq("m", 1)));
    bool byTimeout = false;
    auto batch = q.popBatch(8, 30'000, &byTimeout);
    double ms = std::chrono::duration<double, std::milli>(Clock::now() -
                                                          t0)
                    .count();
    EXPECT_EQ(batch.size(), 2u);
    EXPECT_TRUE(byTimeout);
    EXPECT_GE(ms, 20);  // waited (most of) the 30 ms deadline out
}

TEST(RequestQueueTest, FullQueueClosesBatchWithoutWaitingOutDeadline)
{
    // At maxDepth no same-model request can arrive (producers are
    // blocked or shedding), so popBatch must not idle the engine by
    // waiting out a long deadline.
    RequestQueue q(2, AdmissionPolicy::Reject);
    ASSERT_TRUE(q.push(makeReq("m", 0)));
    ASSERT_TRUE(q.push(makeReq("m", 1)));
    auto t0 = Clock::now();
    auto batch = q.popBatch(8, 3'000'000);  // 3 s deadline
    double ms = std::chrono::duration<double, std::milli>(Clock::now() -
                                                          t0)
                    .count();
    EXPECT_EQ(batch.size(), 2u);
    EXPECT_LT(ms, 1000);  // closed by capacity, not the deadline
}

TEST(RequestQueueTest, BatchesAreSingleModelFifoAcrossTenants)
{
    RequestQueue q(64, AdmissionPolicy::Block);
    ASSERT_TRUE(q.push(makeReq("a", 0)));
    ASSERT_TRUE(q.push(makeReq("a", 1)));
    ASSERT_TRUE(q.push(makeReq("b", 2)));
    ASSERT_TRUE(q.push(makeReq("a", 3)));
    auto first = q.popBatch(8, 0);
    ASSERT_EQ(first.size(), 3u);  // all a's, b keeps its place
    for (const ServeRequest &r : first)
        EXPECT_EQ(r.model, "a");
    auto second = q.popBatch(8, 0);
    ASSERT_EQ(second.size(), 1u);
    EXPECT_EQ(second[0].model, "b");
}

// ---- EngineCache -----------------------------------------------------------

TEST(EngineCacheTest, CountsHitsAndMissesPerKey)
{
    ThreadPool pool(2);
    EngineConfig cfg;
    cfg.scale = 16;
    EngineCache cache(pool, cfg);
    Engine &a = cache.get("vit_b");
    Engine &b = cache.get("vit_b");
    Engine &c = cache.get("gpt2");
    EXPECT_EQ(&a, &b);  // same planned engine, not a rebuild
    EXPECT_NE(&a, &c);
    Engine &d = cache.get("gpt2");
    EXPECT_EQ(&c, &d);

    auto stats = cache.stats();
    EXPECT_EQ(stats.hits, 2);
    EXPECT_EQ(stats.misses, 2);
    EXPECT_EQ(stats.engines, 2u);
    EXPECT_GT(stats.buildUs, 0);
}

TEST(EngineCacheTest, UnknownModelThrows)
{
    ThreadPool pool(1);
    EngineCache cache(pool);
    EXPECT_THROW(cache.get("nosuchmodel"), std::exception);
}

TEST(EngineTest, LongLivedEngineRerunsBitIdenticalToSerial)
{
    ThreadPool pool(2);
    EngineConfig cfg;
    cfg.scale = 16;
    Engine engine("swin_t", cfg, pool);

    std::vector<Tensor> inputs = makeRequestInputs(engine.graph(), 99);
    Executor ref(engine.graph());
    std::vector<Tensor> want = ref.run(inputs);

    // Two runs through the same plan: no replanning, identical bits.
    auto first = engine.run({inputs});
    auto second = engine.run({inputs, inputs});
    ASSERT_EQ(first.size(), 1u);
    ASSERT_EQ(second.size(), 2u);
    EXPECT_TRUE(bitIdentical(want, first[0]));
    EXPECT_TRUE(bitIdentical(want, second[0]));
    EXPECT_TRUE(bitIdentical(want, second[1]));
}

// ---- DynamicBatcher --------------------------------------------------------

TEST(DynamicBatcherTest, ServesQueuedRequestsAndRecordsStats)
{
    ThreadPool pool(2);
    EngineConfig ecfg;
    ecfg.scale = 16;
    EngineCache cache(pool, ecfg);
    RequestQueue queue(64, AdmissionPolicy::Block);
    DynamicBatcher::Policy policy;
    policy.maxBatch = 4;
    policy.timeoutUs = 1000;

    std::atomic<int> completions{0};
    DynamicBatcher batcher(queue, cache, policy,
                           [&](const RequestRecord &,
                               const std::vector<Tensor> &outs) {
                               EXPECT_FALSE(outs.empty());
                               ++completions;
                           });
    batcher.start();
    for (uint64_t i = 0; i < 6; ++i)
        ASSERT_TRUE(queue.push(makeReq("vit_b", i)));
    queue.close();
    batcher.join();

    const ServeStats &s = batcher.stats();
    EXPECT_EQ(s.completed, 6);
    EXPECT_EQ(completions.load(), 6);
    EXPECT_EQ(s.requests.size(), 6u);
    EXPECT_FALSE(s.batches.empty());
    int64_t hist_total = 0;
    for (const auto &[size, count] : s.batchSizeHist)
        hist_total += size * count;
    EXPECT_EQ(hist_total, 6);
    for (const RequestRecord &r : s.requests) {
        EXPECT_GE(r.queueUs, 0);
        EXPECT_GT(r.execUs, 0);
        EXPECT_GE(r.batchSize, 1);
        EXPECT_LE(r.batchSize, 4);
    }
    EXPECT_EQ(s.cacheMisses, 1);
    EXPECT_EQ(s.cacheHits, static_cast<int64_t>(s.batches.size()) - 1);
}

TEST(DynamicBatcherTest, DispatchErrorFailsFastAndPropagates)
{
    ThreadPool pool(1);
    EngineCache cache(pool);
    RequestQueue queue(8, AdmissionPolicy::Block);
    DynamicBatcher batcher(queue, cache, {});
    batcher.start();

    // A waiter on a doomed request must still be notified (with empty
    // outputs), or closed-loop clients would hang on engine failure.
    std::atomic<bool> notified{false};
    std::atomic<bool> empty_outputs{false};
    ServeRequest bad = makeReq("nosuchmodel", 0);
    bad.onComplete = [&](std::vector<Tensor> &&outs) {
        empty_outputs = outs.empty();
        notified = true;
    };
    ASSERT_TRUE(queue.push(std::move(bad)));
    EXPECT_THROW(batcher.join(), std::exception);
    EXPECT_TRUE(queue.closed());  // refuses further admission
    EXPECT_TRUE(notified.load());
    EXPECT_TRUE(empty_outputs.load());
}

// ---- end-to-end serving ----------------------------------------------------

ServeConfig
smallServeConfig()
{
    ServeConfig cfg;
    cfg.mix = parseMix("vit_b:3,gpt2:1");
    cfg.rps = 150;
    cfg.durationS = 0.2;
    cfg.policy.maxBatch = 4;
    cfg.policy.timeoutUs = 1000;
    cfg.queueDepth = 4096;
    cfg.engine.scale = 16;
    cfg.seed = 42;
    return cfg;
}

TEST(ServeDriverTest, MixedModelLoadIsBitIdenticalToSerial)
{
    ThreadPool pool(2);
    ServeConfig cfg = smallServeConfig();
    cfg.verify = true;
    ServeResult res = runServe(cfg, pool);

    EXPECT_GT(res.stats.completed, 0);
    EXPECT_EQ(res.stats.completed, res.stats.admitted);
    EXPECT_EQ(res.stats.offered,
              res.stats.admitted + res.stats.rejected);
    EXPECT_TRUE(res.verified);
    EXPECT_EQ(res.verifiedRequests, res.stats.completed);
    EXPECT_EQ(res.verifyMismatches, 0);

    // Both tenants actually served.
    EXPECT_EQ(res.stats.completedByModel.count("vit_b"), 1u);
    EXPECT_EQ(res.stats.completedByModel.count("gpt2"), 1u);
    // Engine cache amortized planning: one miss per tenant.
    EXPECT_EQ(res.stats.cacheMisses, 2);
    EXPECT_GT(res.stats.cacheHits, 0);
}

TEST(ServeDriverTest, DeterministicTraceAndOutputsUnderFixedSeed)
{
    ThreadPool pool(2);
    ServeConfig cfg = smallServeConfig();
    cfg.collectOutputs = true;

    ServeResult a = runServe(cfg, pool);
    ServeResult b = runServe(cfg, pool);
    ASSERT_EQ(a.outputs.size(), b.outputs.size());
    ASSERT_GT(a.outputs.size(), 0u);

    auto by_id = [](const CompletedOutput &x, const CompletedOutput &y) {
        return x.id < y.id;
    };
    std::sort(a.outputs.begin(), a.outputs.end(), by_id);
    std::sort(b.outputs.begin(), b.outputs.end(), by_id);
    for (size_t i = 0; i < a.outputs.size(); ++i) {
        EXPECT_EQ(a.outputs[i].id, b.outputs[i].id);
        EXPECT_EQ(a.outputs[i].model, b.outputs[i].model);
        EXPECT_EQ(a.outputs[i].seed, b.outputs[i].seed);
        EXPECT_TRUE(
            bitIdentical(a.outputs[i].outputs, b.outputs[i].outputs))
            << "request " << a.outputs[i].id;
    }
}

TEST(ServeDriverTest, ClosedLoopClientsServeToCompletion)
{
    ThreadPool pool(2);
    ServeConfig cfg = smallServeConfig();
    cfg.clients = 3;
    cfg.durationS = 0.2;
    cfg.verify = true;
    ServeResult res = runServe(cfg, pool);
    EXPECT_GT(res.stats.completed, 0);
    EXPECT_EQ(res.stats.completed, res.stats.admitted);
    EXPECT_EQ(res.verifyMismatches, 0);
}

TEST(ServeDriverTest, RejectAdmissionShedsLoadUnderPressure)
{
    ThreadPool pool(1);
    ServeConfig cfg;
    cfg.mix = parseMix("vit_b");
    cfg.rps = 2000;  // far beyond single-core capacity
    cfg.durationS = 0.15;
    cfg.policy.maxBatch = 2;
    cfg.policy.timeoutUs = 500;
    cfg.queueDepth = 4;
    cfg.admission = AdmissionPolicy::Reject;
    cfg.engine.scale = 16;
    ServeResult res = runServe(cfg, pool);
    EXPECT_GT(res.stats.rejected, 0);
    EXPECT_GT(res.stats.completed, 0);
    EXPECT_EQ(res.stats.offered,
              res.stats.admitted + res.stats.rejected);
    EXPECT_EQ(res.stats.completed, res.stats.admitted);
}

// ---- serve report ----------------------------------------------------------

TEST(ServeReportTest, PercentileInterpolatesAndHandlesEdges)
{
    EXPECT_DOUBLE_EQ(percentile({}, 0.5), 0);
    EXPECT_DOUBLE_EQ(percentile({7}, 0.99), 7);
    EXPECT_DOUBLE_EQ(percentile({1, 2, 3, 4, 5}, 0.5), 3);
    EXPECT_DOUBLE_EQ(percentile({1, 2, 3, 4, 5}, 0), 1);
    EXPECT_DOUBLE_EQ(percentile({1, 2, 3, 4, 5}, 1), 5);
    EXPECT_DOUBLE_EQ(percentile({1, 2}, 0.5), 1.5);
}

TEST(ServeReportTest, PrintAndJsonIncludeHeadlineNumbers)
{
    ThreadPool pool(2);
    ServeConfig cfg = smallServeConfig();
    ServeResult res = runServe(cfg, pool);

    std::ostringstream txt;
    printServeReport(res.stats, txt);
    EXPECT_NE(txt.str().find("serving report:"), std::string::npos);
    EXPECT_NE(txt.str().find("engine cache:"), std::string::npos);
    EXPECT_NE(txt.str().find("latency (ms):"), std::string::npos);
    EXPECT_NE(txt.str().find("size histogram:"), std::string::npos);

    std::ostringstream js;
    writeServeJson(res.stats, js);
    EXPECT_NE(js.str().find("\"throughput_rps\""), std::string::npos);
    EXPECT_NE(js.str().find("\"latency_us\""), std::string::npos);
    EXPECT_NE(js.str().find("\"requests\""), std::string::npos);
    EXPECT_EQ(js.str().find("nan"), std::string::npos);
}

}  // namespace
}  // namespace ngb
