#include <gtest/gtest.h>

#include <cmath>

#include "core/bench.h"

namespace ngb {
namespace {

TEST(BenchTest, ReportInternallyConsistent)
{
    BenchConfig c;
    c.model = "vit_b";
    ProfileReport r = Bench::run(c);
    EXPECT_EQ(r.model, "vit_b");
    EXPECT_EQ(r.flow, "pytorch");
    EXPECT_EQ(r.platformId, "A");
    EXPECT_GT(r.totalUs, 0);
    // Category times sum to the total.
    double sum = 0;
    for (const auto &[cat, us] : r.usByCategory)
        sum += us;
    EXPECT_NEAR(sum, r.totalUs, 1e-6 * r.totalUs);
    EXPECT_NEAR(r.gemmUs + r.nonGemmUs, r.totalUs, 1e-6 * r.totalUs);
    EXPECT_NEAR(r.gemmPct() + r.nonGemmPct(), 100.0, 1e-6);
}

TEST(BenchTest, UnknownModelThrows)
{
    BenchConfig c;
    c.model = "alexnet";
    EXPECT_THROW(Bench::run(c), std::runtime_error);
}

TEST(BenchTest, GpuAccelerationRaisesNonGemmShare)
{
    // The paper's headline finding (Fig. 1 / Fig. 6): accelerating
    // GEMMs shifts the Amdahl balance toward non-GEMM operators.
    for (const char *m : {"gpt2_xl", "swin_b", "detr", "vit_b"}) {
        BenchConfig c;
        c.model = m;
        c.gpu = false;
        double cpu_share = Bench::run(c).nonGemmPct();
        c.gpu = true;
        double gpu_share = Bench::run(c).nonGemmPct();
        EXPECT_GT(gpu_share, cpu_share) << m;
    }
}

TEST(BenchTest, GpuReducesEndToEndLatency)
{
    for (const char *m : {"vit_h", "detr", "llama2"}) {
        BenchConfig c;
        c.model = m;
        c.gpu = false;
        double cpu_ms = Bench::run(c).totalMs();
        c.gpu = true;
        double gpu_ms = Bench::run(c).totalMs();
        EXPECT_LT(gpu_ms, cpu_ms) << m;
    }
}

TEST(BenchTest, WorkstationDiffersFromDataCenter)
{
    BenchConfig c;
    c.model = "swin_t";
    c.platform = "A";
    double a = Bench::run(c).totalUs;
    c.platform = "B";
    double b = Bench::run(c).totalUs;
    EXPECT_NE(a, b);
    EXPECT_GT(b, 0);
}

TEST(BenchTest, BatchEightCostsMoreThanBatchOne)
{
    BenchConfig c;
    c.model = "vit_b";
    c.batch = 1;
    double b1 = Bench::run(c).totalUs;
    c.batch = 8;
    double b8 = Bench::run(c).totalUs;
    EXPECT_GT(b8, b1);
    EXPECT_LT(b8, 8.5 * b1);  // sublinear: overheads amortize
}

TEST(BenchTest, DominantCategoriesMatchTableIV)
{
    auto dominant = [](const char *m) {
        BenchConfig c;
        c.model = m;
        return Bench::run(c).dominantNonGemmCategory();
    };
    EXPECT_EQ(dominant("vit_b"), OpCategory::Normalization);
    EXPECT_EQ(dominant("vit_l"), OpCategory::Normalization);
    EXPECT_EQ(dominant("swin_t"), OpCategory::Memory);
    EXPECT_EQ(dominant("swin_s"), OpCategory::Memory);
    EXPECT_EQ(dominant("swin_b"), OpCategory::Memory);
    EXPECT_EQ(dominant("faster_rcnn"), OpCategory::ElementWise);
    EXPECT_EQ(dominant("mask_rcnn"), OpCategory::ElementWise);
    EXPECT_EQ(dominant("detr"), OpCategory::Normalization);
    EXPECT_EQ(dominant("maskformer"), OpCategory::Memory);
    EXPECT_EQ(dominant("gpt2"), OpCategory::Activation);
    EXPECT_EQ(dominant("gpt2_l"), OpCategory::Activation);
    EXPECT_EQ(dominant("gpt2_xl"), OpCategory::Activation);
    EXPECT_EQ(dominant("bert"), OpCategory::Normalization);
    EXPECT_EQ(dominant("mixtral"), OpCategory::Memory);
}

TEST(BenchTest, FusionFlowsReduceNonGemmLatency)
{
    // Table V: fusion cuts non-GEMM time but does not eliminate it.
    for (const char *m : {"swin_t", "swin_b", "detr", "segformer"}) {
        BenchConfig c;
        c.model = m;
        c.flow = "pytorch";
        ProfileReport pt = Bench::run(c);
        c.flow = "tensorrt";
        ProfileReport trt = Bench::run(c);
        EXPECT_LT(trt.nonGemmUs, pt.nonGemmUs) << m;
        EXPECT_LT(trt.totalUs, pt.totalUs) << m;
        // Not fully eliminated: still >= 15% of total (paper: 15-48%).
        EXPECT_GT(trt.nonGemmPct(), 15.0) << m;
    }
}

TEST(BenchTest, DetrBenefitsMostFromTensorRt)
{
    // Section IV-B: DETR's CONV+BN+RELU folding makes TRT exceptionally
    // effective compared to Segformer at a similar fusion rate.
    auto speedup = [](const char *m) {
        BenchConfig c;
        c.model = m;
        c.flow = "pytorch";
        double before = Bench::run(c).nonGemmUs;
        c.flow = "tensorrt";
        double after = Bench::run(c).nonGemmUs;
        return before / after;
    };
    EXPECT_GT(speedup("detr"), speedup("segformer"));
    EXPECT_GT(speedup("detr"), speedup("swin_t"));
}

TEST(BenchTest, OrtInflatesMemoryShareOnLlms)
{
    // Case study 1 (Fig. 7): unsupported memory ops fall back to the
    // CPU and come to dominate under ONNX Runtime.
    for (const char *m : {"gpt2_xl", "llama2"}) {
        BenchConfig c;
        c.model = m;
        c.flow = "pytorch";
        double pt_mem = Bench::run(c).categoryPct(OpCategory::Memory);
        c.flow = "ort";
        ProfileReport ort = Bench::run(c);
        EXPECT_GT(ort.categoryPct(OpCategory::Memory), 4.0 * pt_mem) << m;
        EXPECT_EQ(ort.dominantNonGemmCategory(), OpCategory::Memory) << m;
    }
}

TEST(BenchTest, QuantizationAggravatesNonGemm)
{
    // Section IV-C: int8 speeds GEMMs up and adds Q/DQ work.
    BenchConfig c;
    c.model = "llama3";
    c.seqLen = 512;
    ProfileReport fp = Bench::run(c);
    c.quantize = true;
    ProfileReport q = Bench::run(c);
    EXPECT_LT(q.gemmUs, fp.gemmUs);
    EXPECT_GT(q.nonGemmUs, fp.nonGemmUs);
    EXPECT_GT(q.nonGemmPct(), fp.nonGemmPct());
    EXPECT_GT(q.categoryPct(OpCategory::QDQ), 0.0);
    EXPECT_EQ(fp.categoryPct(OpCategory::QDQ), 0.0);
}

TEST(BenchTest, LongerSequencesRaiseEltwiseShareUnderInt8)
{
    BenchConfig c;
    c.model = "llama3";
    c.quantize = true;
    c.seqLen = 512;
    double short_elt = Bench::run(c).categoryPct(OpCategory::ElementWise);
    c.seqLen = 4096;
    double long_elt = Bench::run(c).categoryPct(OpCategory::ElementWise);
    EXPECT_GT(long_elt, short_elt);
}

TEST(BenchTest, EnergyPositiveWithGpu)
{
    BenchConfig c;
    c.model = "segformer";
    ProfileReport r = Bench::run(c);
    EXPECT_GT(r.energy.gpuJoules, 0.0);
    c.batch = 8;
    EXPECT_GT(Bench::run(c).energy.gpuJoules, r.energy.gpuJoules);
}

TEST(BenchTest, FusionStatsPopulatedForTensorRt)
{
    BenchConfig c;
    c.model = "detr";
    c.flow = "tensorrt";
    ProfileReport r = Bench::run(c);
    EXPECT_GT(r.fusionStats.totalNonGemm, 0);
    EXPECT_GT(r.fusionStats.fusedNonGemm, 0);
    EXPECT_GT(r.fusionStats.fusedWithGemm, 0);
    EXPECT_GT(r.fusionStats.fusionRate(), 0.05);
    EXPECT_LT(r.fusionStats.fusionRate(), 0.6);
}

TEST(BenchTest, TestScaleShrinksGraphs)
{
    BenchConfig c;
    c.model = "gpt2";
    ProfileReport full = Bench::run(c);
    c.testScale = 8;
    ProfileReport tiny = Bench::run(c);
    EXPECT_LT(tiny.graphStats.totalParams, full.graphStats.totalParams);
}

TEST(BenchTest, AverageSharesInPaperBand)
{
    // Fig. 6 averages: CPU ~17%, GPU ~42% non-GEMM. Allow wide bands —
    // this guards against calibration regressions, not exactness.
    double cpu_sum = 0, gpu_sum = 0;
    int n = 0;
    for (const char *m :
         {"vit_b", "swin_t", "detr", "segformer", "gpt2", "bert"}) {
        BenchConfig c;
        c.model = m;
        c.gpu = false;
        cpu_sum += Bench::run(c).nonGemmPct();
        c.gpu = true;
        gpu_sum += Bench::run(c).nonGemmPct();
        ++n;
    }
    EXPECT_LT(cpu_sum / n, 45.0);
    EXPECT_GT(gpu_sum / n, 35.0);
    EXPECT_GT(gpu_sum / n, cpu_sum / n + 10.0);
}

}  // namespace
}  // namespace ngb
