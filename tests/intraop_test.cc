#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <vector>

#include "deploy/fusion.h"
#include "graph/executor.h"
#include "models/registry.h"
#include "ops/optimized_kernels.h"
#include "ops/simd_backend.h"
#include "platform/tuning_cache.h"
#include "quant/quant_kernels.h"
#include "quant/quant_mode.h"
#include "quant/weight_pack.h"
#include "runtime/batch_driver.h"
#include "runtime/intraop.h"
#include "runtime/parallel_executor.h"
#include "runtime/request_util.h"
#include "runtime/thread_pool.h"

/**
 * @file
 * Intra-op parallelism: the ParallelRegion primitive (nesting guard,
 * shard accounting), the thread-keyed tuning cache, and — the heart of
 * the PR — the differential suite asserting that every registry model
 * produces BIT-IDENTICAL outputs at every thread count, f32 and int8,
 * fused and unfused. Sharding splits M/N iteration space and never the
 * K reduction, so there is no tolerance anywhere in this file: every
 * comparison is exact.
 */

namespace ngb {
namespace {

using Clock = std::chrono::steady_clock;

::testing::AssertionResult
outputsBitIdentical(const std::vector<Tensor> &a,
                    const std::vector<Tensor> &b)
{
    std::string diff = bitDifference(a, b);
    if (diff.empty())
        return ::testing::AssertionSuccess();
    return ::testing::AssertionFailure() << diff;
}

// ---- mode parsing ----------------------------------------------------------

TEST(IntraOpModeTest, ParsesNamesAndRejectsGarbage)
{
    EXPECT_EQ(parseIntraOpMode("on"), IntraOpMode::On);
    EXPECT_EQ(parseIntraOpMode("off"), IntraOpMode::Off);
    EXPECT_EQ(parseIntraOpMode("auto"), IntraOpMode::Auto);
    EXPECT_THROW(parseIntraOpMode("yes"), std::runtime_error);
    EXPECT_THROW(parseIntraOpMode(""), std::runtime_error);
    EXPECT_STREQ(intraOpModeName(IntraOpMode::On), "on");
    EXPECT_STREQ(intraOpModeName(IntraOpMode::Off), "off");
    EXPECT_STREQ(intraOpModeName(IntraOpMode::Auto), "auto");
}

// ---- ParallelRegion primitive ----------------------------------------------

TEST(IntraOpRegionTest, InertRegionRunsShardsSeriallyInOrder)
{
    ParallelRegion region;  // no pool
    EXPECT_EQ(region.threads(), 1);
    std::vector<size_t> order;
    region.run(5, [&](size_t s, int worker) {
        EXPECT_GE(worker, 0);
        order.push_back(s);
    });
    ASSERT_EQ(order.size(), 5u);
    for (size_t i = 0; i < 5; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(IntraOpRegionTest, RunsEveryShardExactlyOnceAcrossWorkers)
{
    ThreadPool pool(4);
    ParallelRegion region(&pool);
    EXPECT_EQ(region.threads(), 4);
    std::vector<std::atomic<int>> hits(257);
    region.run(hits.size(), [&](size_t s, int worker) {
        EXPECT_GE(worker, 0);
        EXPECT_LT(worker, 4);
        ++hits[s];
    });
    for (const auto &h : hits)
        EXPECT_EQ(h.load(), 1);
}

TEST(IntraOpRegionTest, ShardExceptionPropagatesAndPoolSurvives)
{
    ThreadPool pool(4);
    ParallelRegion region(&pool);
    EXPECT_THROW(region.run(64,
                            [&](size_t s, int) {
                                if (s == 13)
                                    throw std::runtime_error("boom");
                            }),
                 std::runtime_error);
    std::atomic<int> n{0};
    region.run(32, [&](size_t, int) { ++n; });
    EXPECT_EQ(n.load(), 32);
}

// ---- nesting guard ---------------------------------------------------------

TEST(IntraOpNestingTest, RegionInsidePoolTaskRunsInlineWithoutDeadlock)
{
    // The wavefront executor dispatches node tasks through the same
    // pool a kernel's region borrows. A region launched from INSIDE a
    // task must run its shards inline on the calling worker — any
    // attempt at a second fork-join on the same pool would deadlock.
    ThreadPool pool(3);
    ParallelRegion region(&pool);
    std::atomic<int> shards{0};
    std::atomic<int> outer{0};
    pool.parallelFor(8, [&](size_t, int w) {
        EXPECT_TRUE(ThreadPool::inTask());
        EXPECT_EQ(ThreadPool::currentWorker(), w);
        ++outer;
        region.run(16, [&](size_t, int worker) {
            // Inline execution: the shard stays on the task's worker.
            EXPECT_EQ(worker, w);
            ++shards;
        });
    });
    EXPECT_EQ(outer.load(), 8);
    EXPECT_EQ(shards.load(), 8 * 16);
    EXPECT_FALSE(ThreadPool::inTask());
    EXPECT_EQ(ThreadPool::currentWorker(), -1);
}

TEST(IntraOpNestingTest, InlineShardsAreNotDoubleCountedInWorkerStats)
{
    ThreadPool pool(2);
    pool.drainStats();

    ParallelRegion region(&pool);
    auto spin = [](double us) {
        auto t0 = Clock::now();
        while (std::chrono::duration<double, std::micro>(Clock::now() -
                                                         t0)
                   .count() < us)
            ;
    };
    auto wall0 = Clock::now();
    pool.parallelFor(1, [&](size_t, int) {
        region.run(4, [&](size_t, int) { spin(2000); });
    });
    double wall_us = std::chrono::duration<double, std::micro>(
                         Clock::now() - wall0)
                         .count();

    int64_t tasks = 0;
    double busy_us = 0;
    for (const auto &ws : pool.drainStats()) {
        tasks += ws.tasks;
        busy_us += ws.busyUs;
    }
    // The enclosing task is the only task: inline shards must not be
    // re-counted (1 outer, not 1 + 4 inner).
    EXPECT_EQ(tasks, 1);
    // And its timer runs once: busy time tracks the region's wall
    // (~8ms of spinning), not 2x of it. Generous bound for CI noise.
    EXPECT_GE(busy_us, 8000.0 * 0.5);
    EXPECT_LE(busy_us, wall_us * 1.25 + 1000.0);
}

// ---- thread-keyed tuning cache ---------------------------------------------

TEST(IntraOpTuningTest, ThreadCountIsPartOfTheTuneKey)
{
    simd::TuneKey serial{"matmul", "64x64x64", "avx2", 1};
    simd::TuneKey sharded{"matmul", "64x64x64", "avx2", 8};
    EXPECT_TRUE(serial < sharded || sharded < serial);

    simd::TuningCache cache;
    int tuned = 0;
    auto timeAsIndex = [&](int i) {
        ++tuned;
        return 100.0 - i;  // last candidate "fastest"
    };
    EXPECT_EQ(cache.choose(serial, 3, timeAsIndex), 2);
    EXPECT_EQ(tuned, 3);
    // A different thread count misses (its own tuning run)...
    EXPECT_EQ(cache.choose(sharded, 3, timeAsIndex), 2);
    EXPECT_EQ(tuned, 6);
    // ...and both entries replay independently afterwards.
    EXPECT_EQ(cache.choose(serial, 3, timeAsIndex), 2);
    EXPECT_EQ(cache.choose(sharded, 3, timeAsIndex), 2);
    EXPECT_EQ(tuned, 6);
    EXPECT_EQ(cache.entries(), 2u);
}

// ---- ragged macro-tile shapes ----------------------------------------------

/** Shapes straddling every blocking boundary the kernels use: the
 *  4/16 register tile, the 64-row and 128-col macro tiles, kc=256. */
struct GemmShape {
    int64_t m, k, n;
};
const GemmShape kRaggedShapes[] = {
    {1, 7, 9},     {3, 64, 48},    {5, 17, 129},  {63, 256, 80},
    {64, 33, 16},  {65, 100, 130}, {127, 64, 255}, {130, 257, 96},
};

TEST(IntraOpRaggedTest, OptimizedF32KernelsBitIdenticalUnderRegion)
{
    ThreadPool pool(3);
    ParallelRegion region(&pool);
    namespace ko = kernels::opt;
    for (const GemmShape &s : kRaggedShapes) {
        Tensor a = Tensor::randn(Shape{s.m, s.k}, s.m * 31 + s.n);
        Tensor b = Tensor::randn(Shape{s.k, s.n}, s.k * 17 + s.n);
        EXPECT_TRUE(outputsBitIdentical(
            {ko::matmul(a, b, {}, &region)}, {ko::matmul(a, b)}))
            << "matmul " << s.m << "x" << s.k << "x" << s.n;

        Tensor w = Tensor::randn(Shape{s.n, s.k}, s.n * 7 + s.k);
        Tensor bias = Tensor::randn(Shape{s.n}, s.n);
        Tensor wt = ko::packWeightTranspose(w);
        EXPECT_TRUE(outputsBitIdentical(
            {ko::linearPacked(a, wt, bias, {}, &region)},
            {ko::linearPacked(a, wt, bias)}))
            << "linear " << s.m << "x" << s.k << "x" << s.n;
    }
    // Batched matmul: batch and within-item sharding.
    Tensor a = Tensor::randn(Shape{5, 37, 29}, 11);
    Tensor b = Tensor::randn(Shape{5, 29, 43}, 13);
    EXPECT_TRUE(outputsBitIdentical({kernels::opt::bmm(a, b, {}, &region)},
                                    {kernels::opt::bmm(a, b)}));
}

TEST(IntraOpRaggedTest, SimdF32KernelsBitIdenticalUnderRegion)
{
    ThreadPool pool(3);
    ParallelRegion region(&pool);
    namespace sd = kernels::sd;
    for (const GemmShape &s : kRaggedShapes) {
        Tensor a = Tensor::randn(Shape{s.m, s.k}, s.m * 41 + s.n);
        Tensor b = Tensor::randn(Shape{s.k, s.n}, s.k * 13 + s.m);
        EXPECT_TRUE(outputsBitIdentical({sd::matmul(a, b, {}, &region)},
                                        {sd::matmul(a, b)}))
            << "simd matmul " << s.m << "x" << s.k << "x" << s.n;
    }
    Tensor a = Tensor::randn(Shape{4, 33, 65}, 5);
    Tensor b = Tensor::randn(Shape{4, 65, 50}, 7);
    EXPECT_TRUE(outputsBitIdentical({sd::bmm(a, b, {}, &region)},
                                    {sd::bmm(a, b)}));
}

TEST(IntraOpRaggedTest, Int8KernelsBitIdenticalUnderRegion)
{
    ThreadPool pool(3);
    ParallelRegion region(&pool);
    namespace qk = kernels::qnt;
    for (const GemmShape &s : kRaggedShapes) {
        Tensor x = Tensor::randn(Shape{s.m, s.k}, s.m * 3 + s.k, 2.0f);
        Tensor w = Tensor::randn(Shape{s.n, s.k}, s.n * 5 + s.k, 0.08f);
        Tensor bias = Tensor::randn(Shape{s.n}, s.n, 0.1f);
        Tensor ws = quant::perChannelScales(w);
        Tensor wtq = quant::packWeightInt8(w, ws);
        auto [xq, xs] = qk::quantizeActivation(x);
        float xscale = qk::scaleValue(xs);

        EXPECT_TRUE(outputsBitIdentical(
            {qk::int8AccLinearPacked(xq, wtq, {}, &region)},
            {qk::int8AccLinearPacked(xq, wtq)}))
            << "int8 acc " << s.m << "x" << s.k << "x" << s.n;
        EXPECT_TRUE(outputsBitIdentical(
            {qk::int8LinearPackedRequant(xq, xscale, wtq, ws, bias,
                                         nullptr, 0, {}, &region)},
            {qk::int8LinearPackedRequant(xq, xscale, wtq, ws, bias,
                                         nullptr, 0)}))
            << "int8 requant " << s.m << "x" << s.k << "x" << s.n;
        EXPECT_TRUE(outputsBitIdentical(
            {qk::w8LinearPacked(x, wtq, ws, bias, nullptr, 0, {},
                                &region)},
            {qk::w8LinearPacked(x, wtq, ws, bias, nullptr, 0)}))
            << "w8 " << s.m << "x" << s.k << "x" << s.n;

        // The simd int8 path over its own (possibly dot-interleaved)
        // packed layout.
        Tensor wp = kernels::sd::packInt8Weight(wtq);
        EXPECT_TRUE(outputsBitIdentical(
            {kernels::sd::int8LinearRequant(xq, xscale, wp, ws, bias,
                                            {}, &region)},
            {kernels::sd::int8LinearRequant(xq, xscale, wp, ws, bias)}))
            << "simd int8 " << s.m << "x" << s.k << "x" << s.n;
    }
}

// ---- hybrid scheduling seams -----------------------------------------------

TEST(IntraOpSchedulerTest, OffModeNeverRunsDeepLevels)
{
    Graph g = models::findModel("vit_b").build(ModelConfig{1, 8, false,
                                                           0, 8});
    ThreadPool pool(4);
    ParallelExecutor ex(g, pool, optimizedBackend(), false,
                        IntraOpMode::Off);
    ex.run(makeRequestInputs(g, 1));
    EXPECT_EQ(ex.profile().deepLevelCount(), 0);
    EXPECT_EQ(ex.profile().intraop, "off");
}

TEST(IntraOpSchedulerTest, OnModeRunsNarrowGemmLevelsDeep)
{
    Graph g = models::findModel("vit_b").build(ModelConfig{1, 8, false,
                                                           0, 8});
    ThreadPool pool(4);
    ParallelExecutor ex(g, pool, optimizedBackend(), false,
                        IntraOpMode::On);
    ex.run(makeRequestInputs(g, 1));
    // A transformer trunk is narrower than 4 workers at its GEMM
    // levels: On must hand at least some of them to intra-op.
    EXPECT_GT(ex.profile().deepLevelCount(), 0);
    EXPECT_EQ(ex.profile().intraop, "on");
}

TEST(IntraOpSchedulerTest, SingleRequestBatchGoesDeepAndStaysIdentical)
{
    Graph g = models::findModel("gpt2").build(ModelConfig{1, 8, false,
                                                          0, 8});
    auto inputs = makeRequestInputs(g, 3);
    Executor ref(g, optimizedBackend());
    auto want = ref.run(inputs);

    ThreadPool pool(4);
    for (IntraOpMode mode :
         {IntraOpMode::Off, IntraOpMode::On, IntraOpMode::Auto}) {
        BatchDriver drv(g, pool, optimizedBackend(), false, mode);
        auto outs = drv.run({inputs});
        ASSERT_EQ(outs.size(), 1u);
        EXPECT_TRUE(outputsBitIdentical(outs[0], want))
            << "mode " << intraOpModeName(mode);
        EXPECT_EQ(drv.profile().intraop, intraOpModeName(mode));
    }
}

// ---- whole-registry differential suite -------------------------------------

class IntraOpAllModels : public ::testing::TestWithParam<std::string>
{
};

TEST_P(IntraOpAllModels, BitIdenticalAtEveryThreadCount)
{
    const auto &info = models::findModel(GetParam());
    ModelConfig cfg;
    cfg.batch = 1;
    cfg.seqLen = 8;
    cfg.testScale = 8;
    Graph g = info.build(cfg);
    auto inputs = makeRequestInputs(g, 42);

    const int hw = resolveThreads(0);
    std::vector<int> counts{1, 2};
    if (hw > 2)
        counts.push_back(hw);

    const Backend *backends[] = {&optimizedBackend(), &simdBackend()};
    for (const Backend *backend : backends) {
        Executor ref(g, *backend);
        auto want = ref.run(inputs);
        for (int threads : counts) {
            ThreadPool pool(threads);
            // Single-request batch: the whole graph runs under a
            // full-pool region — every GEMM shards.
            BatchDriver drv(g, pool, *backend, false, IntraOpMode::On);
            auto outs = drv.run({inputs});
            ASSERT_EQ(outs.size(), 1u);
            EXPECT_TRUE(outputsBitIdentical(outs[0], want))
                << info.name << " driver backend=" << backend->name()
                << " threads=" << threads;
            // Wavefront executor: hybrid per-level wide/deep.
            ParallelExecutor ex(g, pool, *backend, false,
                                IntraOpMode::On);
            EXPECT_TRUE(outputsBitIdentical(ex.run(inputs), want))
                << info.name << " executor backend=" << backend->name()
                << " threads=" << threads;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(AllRegistryModels, IntraOpAllModels,
                         ::testing::ValuesIn([] {
                             std::vector<std::string> names;
                             for (const auto &m : models::modelRegistry())
                                 names.push_back(m.name);
                             return names;
                         }()));

// ---- int8 + fused epilogues ------------------------------------------------

TEST(IntraOpQuantFusedTest, QuantizedAndFusedGraphsBitIdenticalSharded)
{
    // The executable-int8 rewrite and the fused GEMM-epilogue paths
    // route through the same sharded tile loops; a representative
    // transformer + CNN pair covers requantize, acc, and w8 forms.
    const int hw = resolveThreads(0);
    const int threads = hw > 2 ? hw : 2;
    for (const char *model : {"gpt2", "vit_b", "resnet50"}) {
        Graph base = models::findModel(model).build(
            ModelConfig{1, 8, false, 0, 8});
        for (auto mode : {quant::QuantExecMode::Int8,
                          quant::QuantExecMode::WeightOnly}) {
            Graph gq = quant::applyQuantMode(base, mode);
            for (bool fuse : {false, true}) {
                Graph g = fuse ? applyFusion(gq, executableFusionConfig())
                               : gq;
                auto inputs = makeRequestInputs(g, 9);
                const Backend *backends[] = {&optimizedBackend(),
                                             &simdBackend()};
                for (const Backend *backend : backends) {
                    Executor ref(g, *backend);
                    auto want = ref.run(inputs);
                    ThreadPool pool(threads);
                    BatchDriver drv(g, pool, *backend, false,
                                    IntraOpMode::On);
                    auto outs = drv.run({inputs});
                    ASSERT_EQ(outs.size(), 1u);
                    EXPECT_TRUE(outputsBitIdentical(outs[0], want))
                        << model << " quant="
                        << quant::quantModeName(mode)
                        << " fuse=" << fuse
                        << " backend=" << backend->name();
                }
            }
        }
    }
}

}  // namespace
}  // namespace ngb
