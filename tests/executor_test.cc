#include <gtest/gtest.h>

#include <cmath>

#include "graph/builder.h"
#include "graph/executor.h"
#include "ops/kernels.h"

namespace ngb {
namespace {

namespace kn = kernels;

TEST(ExecutorTest, SingleOpGraph)
{
    Graph g;
    GraphBuilder b(g);
    Value x = b.input(Shape{4});
    b.output(b.relu(x));

    Tensor in = Tensor::zeros(Shape{4});
    in.flatSet(0, -1.0f);
    in.flatSet(1, 2.0f);
    Executor ex(g);
    auto out = ex.run({in});
    ASSERT_EQ(out.size(), 1u);
    EXPECT_FLOAT_EQ(out[0].flatAt(0), 0.0f);
    EXPECT_FLOAT_EQ(out[0].flatAt(1), 2.0f);
}

TEST(ExecutorTest, InputCountAndShapeValidated)
{
    Graph g;
    GraphBuilder b(g);
    Value x = b.input(Shape{4});
    b.output(b.relu(x));
    Executor ex(g);
    EXPECT_THROW(ex.run({}), std::runtime_error);
    EXPECT_THROW(ex.run({Tensor::zeros(Shape{5})}), std::runtime_error);
}

TEST(ExecutorTest, GraphMatchesDirectKernelComposition)
{
    // softmax(linear(x)) through the graph equals direct kernel calls
    // with the same deterministic parameters.
    Graph g;
    GraphBuilder b(g);
    Value x = b.input(Shape{2, 8});
    Value y = b.linear(x, 4, true, "proj");
    b.output(b.softmax(y, -1));

    Tensor in = Tensor::randn(Shape{2, 8}, 77);
    Executor ex(g);
    auto out = ex.run({in});

    const Node &lin = g.node(y.node);
    const Tensor &w = ex.params().get(lin, 0);
    const Tensor &bias = ex.params().get(lin, 1);
    Tensor want = kn::softmax(kn::linear(in, w, bias), -1);
    for (int64_t i = 0; i < want.numel(); ++i)
        EXPECT_NEAR(out[0].flatAt(i), want.flatAt(i), 1e-5f);
}

TEST(ExecutorTest, ResidualBlockNumerics)
{
    Graph g;
    GraphBuilder b(g);
    Value x = b.input(Shape{1, 4, 16});
    Value h = b.layerNorm(x);
    h = b.linear(h, 16, true, "fc");
    h = b.gelu(h);
    Value y = b.add(x, h);
    b.output(y);

    Tensor in = Tensor::randn(Shape{1, 4, 16}, 78);
    Executor ex(g);
    auto out = ex.run({in});
    EXPECT_EQ(out[0].shape(), in.shape());
    // Residual structure: output differs from both x and h alone.
    bool differs = false;
    for (int64_t i = 0; i < in.numel(); ++i)
        differs |= std::abs(out[0].flatAt(i) - in.flatAt(i)) > 1e-6f;
    EXPECT_TRUE(differs);
}

TEST(ExecutorTest, SplitProducesAllOutputs)
{
    Graph g;
    GraphBuilder b(g);
    Value x = b.input(Shape{2, 6});
    auto parts = b.split(x, 2, 1);
    ASSERT_EQ(parts.size(), 3u);
    b.output(parts[0]);
    b.output(parts[2]);

    Tensor in = Tensor::arange(Shape{2, 6});
    Executor ex(g);
    auto out = ex.run({in});
    EXPECT_FLOAT_EQ(out[0].at({0, 0}), 0.0f);
    EXPECT_FLOAT_EQ(out[1].at({0, 0}), 4.0f);
    EXPECT_FLOAT_EQ(out[1].at({1, 1}), 11.0f);
}

TEST(ExecutorTest, TopKSecondOutput)
{
    Graph g;
    GraphBuilder b(g);
    Value x = b.input(Shape{1, 5});
    auto [vals, idx] = b.topk(x, 2);
    b.output(vals);
    b.output(idx);

    Tensor in = Tensor::arange(Shape{1, 5});
    Executor ex(g);
    auto out = ex.run({in});
    EXPECT_FLOAT_EQ(out[0].at({0, 0}), 4.0f);
    EXPECT_EQ(static_cast<int>(out[1].at({0, 0})), 4);
}

TEST(ExecutorTest, WeightNodesMaterializeFromParamStore)
{
    Graph g;
    GraphBuilder b(g);
    Value x = b.input(Shape{1, 4});
    Value w = b.weight(Shape{1, 4}, "pos");
    b.output(b.add(x, w));

    Executor ex(g);
    auto out = ex.run({Tensor::zeros(Shape{1, 4})});
    // Output equals the deterministic weight itself.
    const Tensor &wt = ex.params().get(g.node(w.node), 0);
    for (int64_t i = 0; i < 4; ++i)
        EXPECT_FLOAT_EQ(out[0].flatAt(i), wt.flatAt(i));
}

TEST(ExecutorTest, LayoutChainPreservesData)
{
    Graph g;
    GraphBuilder b(g);
    Value x = b.input(Shape{2, 3, 4});
    Value v = b.permute(x, {2, 0, 1});
    v = b.contiguous(v);
    v = b.view(v, Shape{4, 6});
    v = b.transpose(v, 0, 1);
    v = b.contiguous(v);
    v = b.reshape(v, Shape{2, 3, 4});
    b.output(v);

    Tensor in = Tensor::arange(Shape{2, 3, 4});
    Executor ex(g);
    auto out = ex.run({in});
    // permute->view->transpose->reshape round-trips to a permutation;
    // sum is invariant.
    float sum_in = 0, sum_out = 0;
    for (int64_t i = 0; i < in.numel(); ++i) {
        sum_in += in.flatAt(i);
        sum_out += out[0].flatAt(i);
    }
    EXPECT_FLOAT_EQ(sum_in, sum_out);
}

TEST(ExecutorTest, ParamStoreNormDefaults)
{
    Graph g;
    GraphBuilder b(g);
    Value x = b.input(Shape{1, 2, 8});
    Value y = b.layerNorm(x);
    b.output(y);
    Executor ex(g);
    const Node &n = g.node(y.node);
    const Tensor &gamma = ex.params().get(n, 0);
    const Tensor &beta = ex.params().get(n, 1);
    EXPECT_FLOAT_EQ(gamma.flatAt(0), 1.0f);
    EXPECT_FLOAT_EQ(beta.flatAt(0), 0.0f);
}

TEST(ExecutorTest, ParamStoreBiasIsZero)
{
    Graph g;
    GraphBuilder b(g);
    Value x = b.input(Shape{1, 8});
    Value y = b.linear(x, 4);
    b.output(y);
    Executor ex(g);
    const Tensor &bias = ex.params().get(g.node(y.node), 1);
    for (int64_t i = 0; i < 4; ++i)
        EXPECT_FLOAT_EQ(bias.flatAt(i), 0.0f);
}

TEST(ExecutorTest, ParamsAreCachedAcrossRuns)
{
    Graph g;
    GraphBuilder b(g);
    Value x = b.input(Shape{1, 8});
    b.output(b.linear(x, 8));
    Executor ex(g);
    Tensor in = Tensor::randn(Shape{1, 8}, 80);
    auto o1 = ex.run({in});
    auto o2 = ex.run({in});
    for (int64_t i = 0; i < o1[0].numel(); ++i)
        EXPECT_FLOAT_EQ(o1[0].flatAt(i), o2[0].flatAt(i));
}

TEST(ExecutorTest, AttentionBlockEndToEnd)
{
    // A miniature attention pattern with all the memory ops involved.
    Graph g;
    GraphBuilder b(g);
    int64_t t = 4, d = 8, heads = 2;
    Value x = b.input(Shape{1, t, d});
    Value q = b.linear(x, d, true, "q");
    Value k = b.linear(x, d, true, "k");
    Value v = b.linear(x, d, true, "v");
    auto split_heads = [&](Value vv) {
        Value s = b.view(vv, Shape{1, t, heads, d / heads});
        s = b.permute(s, {0, 2, 1, 3});
        return b.reshape(s, Shape{heads, t, d / heads});
    };
    q = split_heads(q);
    k = split_heads(k);
    v = split_heads(v);
    Value logits = b.bmm(q, b.contiguous(b.transpose(k, 1, 2)));
    Value probs = b.softmax(logits, -1);
    Value ctx = b.bmm(probs, v);
    b.output(ctx);

    Executor ex(g);
    auto out = ex.run({Tensor::randn(Shape{1, t, d}, 81)});
    EXPECT_EQ(out[0].shape(), (Shape{heads, t, d / heads}));
    // Attention outputs are convex combinations of V rows: bounded.
    float vmax = 0;
    for (int64_t i = 0; i < out[0].numel(); ++i)
        vmax = std::max(vmax, std::abs(out[0].flatAt(i)));
    EXPECT_LT(vmax, 10.0f);
}

}  // namespace
}  // namespace ngb
