#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <vector>

#include "ops/kernels.h"

namespace ngb {
namespace {

namespace kn = kernels;

Tensor
makeBoxes(const std::vector<std::array<float, 4>> &boxes)
{
    Tensor t(Shape{static_cast<int64_t>(boxes.size()), 4});
    for (size_t i = 0; i < boxes.size(); ++i)
        for (size_t j = 0; j < 4; ++j)
            t.set({static_cast<int64_t>(i), static_cast<int64_t>(j)},
                  boxes[i][j]);
    return t;
}

Tensor
makeScores(const std::vector<float> &s)
{
    Tensor t(Shape{static_cast<int64_t>(s.size())});
    for (size_t i = 0; i < s.size(); ++i)
        t.flatSet(static_cast<int64_t>(i), s[i]);
    return t;
}

TEST(NmsTest, SuppressesOverlappingLowerScoredBox)
{
    // Two heavily overlapping boxes + one disjoint box.
    Tensor boxes = makeBoxes({{0, 0, 10, 10}, {1, 1, 11, 11},
                              {50, 50, 60, 60}});
    Tensor scores = makeScores({0.9f, 0.8f, 0.7f});
    Tensor keep = kn::nms(boxes, scores, 0.5f, 0.0f);
    ASSERT_EQ(keep.numel(), 2);
    EXPECT_EQ(keep.dataI32()[0], 0);
    EXPECT_EQ(keep.dataI32()[1], 2);
}

TEST(NmsTest, KeepsAllWhenDisjoint)
{
    Tensor boxes = makeBoxes({{0, 0, 5, 5}, {10, 10, 15, 15},
                              {20, 20, 25, 25}});
    Tensor scores = makeScores({0.3f, 0.9f, 0.6f});
    Tensor keep = kn::nms(boxes, scores, 0.5f, 0.0f);
    ASSERT_EQ(keep.numel(), 3);
    // Sorted by descending score: indices 1, 2, 0.
    EXPECT_EQ(keep.dataI32()[0], 1);
    EXPECT_EQ(keep.dataI32()[1], 2);
    EXPECT_EQ(keep.dataI32()[2], 0);
}

TEST(NmsTest, ScoreThresholdFiltersFirst)
{
    Tensor boxes = makeBoxes({{0, 0, 5, 5}, {10, 10, 15, 15}});
    Tensor scores = makeScores({0.1f, 0.9f});
    Tensor keep = kn::nms(boxes, scores, 0.5f, 0.5f);
    ASSERT_EQ(keep.numel(), 1);
    EXPECT_EQ(keep.dataI32()[0], 1);
}

TEST(NmsTest, OutputIsInvariantProperty)
{
    // Property: no two kept boxes exceed the IoU threshold.
    Tensor boxes = Tensor::randn(Shape{40, 4}, 41, 5.0f);
    // Make valid boxes: y2>y1, x2>x1.
    for (int64_t i = 0; i < 40; ++i) {
        float y1 = std::abs(boxes.at({i, 0}));
        float x1 = std::abs(boxes.at({i, 1}));
        boxes.set({i, 0}, y1);
        boxes.set({i, 1}, x1);
        boxes.set({i, 2}, y1 + 1.0f + std::abs(boxes.at({i, 2})));
        boxes.set({i, 3}, x1 + 1.0f + std::abs(boxes.at({i, 3})));
    }
    Tensor scores = Tensor::randn(Shape{40}, 42);
    float th = 0.4f;
    Tensor keep = kn::nms(boxes, scores, th, -100.0f);
    auto iou = [&](int64_t a, int64_t b) {
        float iy1 = std::max(boxes.at({a, 0}), boxes.at({b, 0}));
        float ix1 = std::max(boxes.at({a, 1}), boxes.at({b, 1}));
        float iy2 = std::min(boxes.at({a, 2}), boxes.at({b, 2}));
        float ix2 = std::min(boxes.at({a, 3}), boxes.at({b, 3}));
        float inter = std::max(0.0f, iy2 - iy1) * std::max(0.0f, ix2 - ix1);
        float aa = (boxes.at({a, 2}) - boxes.at({a, 0})) *
                   (boxes.at({a, 3}) - boxes.at({a, 1}));
        float ab = (boxes.at({b, 2}) - boxes.at({b, 0})) *
                   (boxes.at({b, 3}) - boxes.at({b, 1}));
        return inter / (aa + ab - inter);
    };
    const int32_t *k = keep.dataI32();
    for (int64_t i = 0; i < keep.numel(); ++i)
        for (int64_t j = i + 1; j < keep.numel(); ++j)
            EXPECT_LE(iou(k[i], k[j]), th + 1e-5f);
}

TEST(RoiAlignTest, ConstantFeatureMapSamplesConstant)
{
    Tensor feat = Tensor::full(Shape{1, 2, 8, 8}, 3.0f);
    Tensor rois(Shape{1, 5});
    rois.set({0, 0}, 0);
    rois.set({0, 1}, 1);
    rois.set({0, 2}, 1);
    rois.set({0, 3}, 5);
    rois.set({0, 4}, 5);
    Tensor y = kn::roiAlign(feat, rois, 4, 4);
    EXPECT_EQ(y.shape(), (Shape{1, 2, 4, 4}));
    for (int64_t i = 0; i < y.numel(); ++i)
        EXPECT_NEAR(y.flatAt(i), 3.0f, 1e-5f);
}

TEST(RoiAlignTest, BatchIndexSelectsImage)
{
    Tensor feat = Tensor::zeros(Shape{2, 1, 4, 4});
    for (int64_t i = 0; i < 4; ++i)
        for (int64_t j = 0; j < 4; ++j)
            feat.set({1, 0, i, j}, 7.0f);
    Tensor rois(Shape{1, 5});
    rois.set({0, 0}, 1);  // second image
    rois.set({0, 3}, 3);
    rois.set({0, 4}, 3);
    Tensor y = kn::roiAlign(feat, rois, 2, 2);
    EXPECT_NEAR(y.flatAt(0), 7.0f, 1e-5f);
}

TEST(InterpolateTest, IdentityAtSameResolution)
{
    Tensor x = Tensor::randn(Shape{1, 2, 6, 6}, 43);
    Tensor y = kn::interpolateBilinear(x, 6, 6);
    for (int64_t i = 0; i < x.numel(); ++i)
        EXPECT_NEAR(y.flatAt(i), x.flatAt(i), 1e-4f);
}

TEST(InterpolateTest, UpscalePreservesConstant)
{
    Tensor x = Tensor::full(Shape{1, 1, 3, 3}, 2.5f);
    Tensor y = kn::interpolateBilinear(x, 9, 9);
    EXPECT_EQ(y.shape(), (Shape{1, 1, 9, 9}));
    for (int64_t i = 0; i < y.numel(); ++i)
        EXPECT_NEAR(y.flatAt(i), 2.5f, 1e-5f);
}

TEST(InterpolateTest, DownscaleAveragesSmoothly)
{
    Tensor x = Tensor::zeros(Shape{1, 1, 4, 4});
    for (int64_t i = 0; i < 4; ++i)
        for (int64_t j = 0; j < 4; ++j)
            x.set({0, 0, i, j}, static_cast<float>(i));
    Tensor y = kn::interpolateBilinear(x, 2, 2);
    // Values stay within the input range and increase down rows.
    EXPECT_LT(y.at({0, 0, 0, 0}), y.at({0, 0, 1, 0}));
    EXPECT_GE(y.at({0, 0, 0, 0}), 0.0f);
    EXPECT_LE(y.at({0, 0, 1, 1}), 3.0f);
}

TEST(PoolTest, MaxPoolPicksMaximum)
{
    Tensor x = Tensor::arange(Shape{1, 1, 4, 4});
    Tensor y = kn::maxPool2d(x, 2, 2, 0);
    EXPECT_EQ(y.shape(), (Shape{1, 1, 2, 2}));
    EXPECT_FLOAT_EQ(y.at({0, 0, 0, 0}), 5.0f);
    EXPECT_FLOAT_EQ(y.at({0, 0, 1, 1}), 15.0f);
}

TEST(PoolTest, AvgPoolAverages)
{
    Tensor x = Tensor::full(Shape{1, 1, 4, 4}, 2.0f);
    Tensor y = kn::avgPool2d(x, 2, 2, 0);
    for (int64_t i = 0; i < y.numel(); ++i)
        EXPECT_NEAR(y.flatAt(i), 2.0f, 1e-5f);
}

TEST(PoolTest, AdaptivePoolGlobalAverage)
{
    Tensor x = Tensor::arange(Shape{1, 1, 2, 2});  // 0..3, mean 1.5
    Tensor y = kn::adaptiveAvgPool2d(x, 1, 1);
    EXPECT_NEAR(y.flatAt(0), 1.5f, 1e-5f);
}

TEST(ConcatTest, AlongEachDim)
{
    Tensor a = Tensor::full(Shape{2, 2}, 1.0f);
    Tensor b = Tensor::full(Shape{2, 2}, 2.0f);
    Tensor y0 = kn::concat({a, b}, 0);
    EXPECT_EQ(y0.shape(), (Shape{4, 2}));
    EXPECT_FLOAT_EQ(y0.at({3, 0}), 2.0f);
    Tensor y1 = kn::concat({a, b}, 1);
    EXPECT_EQ(y1.shape(), (Shape{2, 4}));
    EXPECT_FLOAT_EQ(y1.at({0, 3}), 2.0f);
}

TEST(ConcatTest, MismatchThrows)
{
    EXPECT_THROW(kn::concat({Tensor::zeros(Shape{2, 2}),
                             Tensor::zeros(Shape{3, 3})},
                            0),
                 std::runtime_error);
}

TEST(SplitTest, RoundTripsWithConcat)
{
    Tensor x = Tensor::arange(Shape{6, 2});
    auto parts = kn::split(x, 2, 0);
    ASSERT_EQ(parts.size(), 3u);
    std::vector<Tensor> mats;
    for (auto &p : parts)
        mats.push_back(p.contiguous());
    Tensor back = kn::concat(mats, 0);
    for (int64_t i = 0; i < x.numel(); ++i)
        EXPECT_FLOAT_EQ(back.flatAt(i), x.flatAt(i));
}

TEST(SplitTest, UnevenLastChunk)
{
    Tensor x = Tensor::arange(Shape{5});
    auto parts = kn::split(x, 2, 0);
    ASSERT_EQ(parts.size(), 3u);
    EXPECT_EQ(parts[2].numel(), 1);
    EXPECT_FLOAT_EQ(parts[2].flatAt(0), 4.0f);
}

TEST(RollTest, CircularShift)
{
    Tensor x = Tensor::arange(Shape{5});
    Tensor y = kn::roll(x, 2, 0);
    EXPECT_FLOAT_EQ(y.flatAt(0), 3.0f);
    EXPECT_FLOAT_EQ(y.flatAt(1), 4.0f);
    EXPECT_FLOAT_EQ(y.flatAt(2), 0.0f);
}

TEST(RollTest, NegativeAndModularShift)
{
    Tensor x = Tensor::arange(Shape{4});
    Tensor y = kn::roll(x, -1, 0);
    EXPECT_FLOAT_EQ(y.flatAt(0), 1.0f);
    EXPECT_FLOAT_EQ(y.flatAt(3), 0.0f);
    Tensor z = kn::roll(x, 4, 0);  // full cycle = identity
    for (int64_t i = 0; i < 4; ++i)
        EXPECT_FLOAT_EQ(z.flatAt(i), x.flatAt(i));
}

TEST(RollTest, RollAlongMiddleDim)
{
    Tensor x = Tensor::arange(Shape{2, 3, 2});
    Tensor y = kn::roll(x, 1, 1);
    EXPECT_FLOAT_EQ(y.at({0, 0, 0}), x.at({0, 2, 0}));
    EXPECT_FLOAT_EQ(y.at({0, 1, 1}), x.at({0, 0, 1}));
}

}  // namespace
}  // namespace ngb
