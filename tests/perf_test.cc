#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/perf.h"
#include "platform/perf_events.h"

namespace ngb {
namespace {

// Every suite here is named Obs* on purpose: the TSan CI leg runs
// exactly --gtest_filter='Obs*', and the perf scopes / aggregator /
// callback gauges are all claimed concurrency-clean.

/** RAII counter-sampling toggle so a failing test can't leak state. */
struct PerfOn {
    PerfOn() { obs::setPerfEnabled(true); }
    ~PerfOn() { obs::setPerfEnabled(false); }
};

// ---- parseGroupRead (pure, no PMU needed) ----------------------------------

TEST(ObsPerfParseTest, FullGroupMapsPositionally)
{
    // [nr, time_enabled, time_running, cycles, instr, llc, branch]
    const uint64_t words[] = {4, 1000, 900, 111, 222, 33, 4};
    perf::CounterValues v;
    ASSERT_TRUE(perf::parseGroupRead(words, 7, 4, &v));
    EXPECT_TRUE(v.measured);
    EXPECT_EQ(v.cycles, 111u);
    EXPECT_EQ(v.instructions, 222u);
    EXPECT_EQ(v.cacheMisses, 33u);
    EXPECT_EQ(v.branchMisses, 4u);
    EXPECT_EQ(v.timeEnabledNs, 1000u);
    EXPECT_EQ(v.timeRunningNs, 900u);
}

TEST(ObsPerfParseTest, DegradedGroupLeavesMissingCountersZero)
{
    // A 2-counter group (cycles + instructions survived opening).
    const uint64_t words[] = {2, 500, 500, 42, 84};
    perf::CounterValues v;
    ASSERT_TRUE(perf::parseGroupRead(words, 5, 4, &v));
    EXPECT_TRUE(v.measured);
    EXPECT_EQ(v.cycles, 42u);
    EXPECT_EQ(v.instructions, 84u);
    EXPECT_EQ(v.cacheMisses, 0u);
    EXPECT_EQ(v.branchMisses, 0u);
}

TEST(ObsPerfParseTest, RejectsMalformedBuffers)
{
    perf::CounterValues v;
    // Buffer shorter than its own nr header claims.
    const uint64_t short_buf[] = {4, 1000, 900, 111};
    EXPECT_FALSE(perf::parseGroupRead(short_buf, 4, 4, &v));
    EXPECT_FALSE(v.measured);
    EXPECT_EQ(v.cycles, 0u);
    // More counters than the caller's group ever opened.
    const uint64_t too_many[] = {5, 1, 1, 1, 2, 3, 4, 5};
    EXPECT_FALSE(perf::parseGroupRead(too_many, 8, 4, &v));
    // Empty / null.
    EXPECT_FALSE(perf::parseGroupRead(nullptr, 0, 4, &v));
}

// ---- PerfGroup fallback (the path CI containers exercise) ------------------

TEST(ObsPerfGroupTest, ForcedFallbackClocksWithoutCounters)
{
    perf::PerfGroup g(/*forceFallback=*/true);
    EXPECT_FALSE(g.available());
    EXPECT_EQ(g.counters(), 0u);
    EXPECT_FALSE(g.detail().empty());

    perf::CounterValues a = g.read();
    perf::CounterValues b = g.read();
    EXPECT_FALSE(a.measured);
    EXPECT_FALSE(b.measured);
    EXPECT_EQ(a.cycles, 0u);  // never fabricate counts
    EXPECT_GE(b.timeEnabledNs, a.timeEnabledNs);  // time stays real
    EXPECT_GT(b.timeEnabledNs, 0u);
}

TEST(ObsPerfGroupTest, DefaultGroupNeverThrowsAndReadsConsistently)
{
    // Whatever this host supports — full group, partial group, or
    // fallback — construction must succeed and read() must be sane.
    perf::PerfGroup g;
    perf::CounterValues a = g.read();
    perf::CounterValues b = g.read();
    EXPECT_EQ(a.measured, g.available());
    if (g.available()) {
        EXPECT_GE(g.counters(), 1u);
        EXPECT_GE(b.cycles, a.cycles);  // cumulative, monotone
    } else {
        EXPECT_FALSE(g.detail().empty());
    }
    EXPECT_GE(b.timeEnabledNs, a.timeEnabledNs);
}

TEST(ObsPerfGroupTest, StatusProbeIsStableAcrossCalls)
{
    const perf::PerfStatus &s1 = perf::perfStatus();
    const perf::PerfStatus &s2 = perf::perfStatus();
    EXPECT_EQ(&s1, &s2);  // one probe, cached
    if (!s1.available) {
        EXPECT_FALSE(s1.detail.empty());  // degradation names a cause
    }
}

// ---- counterDelta ----------------------------------------------------------

TEST(ObsPerfDeltaTest, SubtractsSaturatingAndAndsMeasured)
{
    perf::CounterValues a, b;
    a.cycles = 100;
    a.instructions = 200;
    a.timeEnabledNs = 10;
    a.measured = true;
    b.cycles = 150;
    b.instructions = 180;  // would go negative: clamp, don't wrap
    b.timeEnabledNs = 25;
    b.measured = true;
    perf::CounterValues d = obs::counterDelta(a, b);
    EXPECT_EQ(d.cycles, 50u);
    EXPECT_EQ(d.instructions, 0u);
    EXPECT_EQ(d.timeEnabledNs, 15u);
    EXPECT_TRUE(d.measured);

    b.measured = false;  // one unmeasured end poisons the delta
    EXPECT_FALSE(obs::counterDelta(a, b).measured);
}

// ---- CounterScope + PerfAggregator -----------------------------------------

TEST(ObsPerfScopeTest, DisarmedWhenSamplingOff)
{
    obs::setPerfEnabled(false);
    obs::SpanEvent ev;
    {
        obs::CounterScope scope(&ev, 0);
        EXPECT_FALSE(scope.armed());
    }
    EXPECT_FALSE(ev.hasCounters);
}

TEST(ObsPerfScopeTest, NestedScopesAttachPayloadsAndCountOnce)
{
    PerfOn on;
    obs::PerfAggregator::instance().clear();
    obs::SpanEvent outer_ev, inner_ev;
    {
        obs::CounterScope outer(
            &outer_ev, static_cast<int>(OpCategory::Gemm));
        ASSERT_TRUE(outer.armed());
        {
            // Inner scope mimics a fused member: payload, category -1.
            obs::CounterScope inner(&inner_ev, -1);
            volatile double sink = 0;
            for (int i = 0; i < 1000; ++i)
                sink = sink + i * 0.5;
        }
        EXPECT_TRUE(inner_ev.hasCounters);
    }
    EXPECT_TRUE(outer_ev.hasCounters);
    // Reads are cumulative on one thread, so the inner delta can never
    // exceed the enclosing one.
    EXPECT_LE(inner_ev.cCycles, outer_ev.cCycles);
    EXPECT_LE(inner_ev.cInstr, outer_ev.cInstr);

    obs::PerfCounterStats t = obs::PerfAggregator::instance().totals();
    // Only the category-carrying outer scope aggregated.
    EXPECT_EQ(t.total.scopes, 1u);
    EXPECT_EQ(t.category(OpCategory::Gemm).scopes, 1u);
    if (t.measured) {
        EXPECT_GE(t.category(OpCategory::Gemm).cycles,
                  outer_ev.cCycles);
    } else {
        // Clock fallback: the scope is counted, counts stay zero.
        EXPECT_EQ(t.total.cycles, 0u);
    }
}

TEST(ObsPerfAggregatorTest, AccumulateTotalsAndSinceDiff)
{
    PerfOn on;
    auto &agg = obs::PerfAggregator::instance();
    agg.clear();

    perf::CounterValues d;
    d.cycles = 1000;
    d.instructions = 2000;
    d.cacheMisses = 30;
    d.branchMisses = 7;
    d.measured = true;
    agg.accumulate(static_cast<int>(OpCategory::Gemm), d);
    agg.accumulate(static_cast<int>(OpCategory::Gemm), d);
    agg.accumulate(static_cast<int>(OpCategory::Memory), d);
    agg.accumulate(-1, d);   // non-category: dropped
    agg.accumulate(999, d);  // out of range: dropped

    obs::PerfCounterStats t0 = agg.totals();
    EXPECT_EQ(t0.total.scopes, 3u);
    EXPECT_EQ(t0.total.cycles, 3000u);
    EXPECT_EQ(t0.category(OpCategory::Gemm).instructions, 4000u);
    EXPECT_EQ(t0.category(OpCategory::Memory).cacheMisses, 30u);
    EXPECT_DOUBLE_EQ(t0.category(OpCategory::Gemm).ipc(), 2.0);
    EXPECT_DOUBLE_EQ(t0.category(OpCategory::Memory)
                         .missesPerKiloInstr(),
                     15.0);

    // A fallback-mode delta increments scopes but no counters.
    perf::CounterValues clocked;
    clocked.cycles = 12345;  // would be garbage; must be ignored
    clocked.measured = false;
    agg.accumulate(static_cast<int>(OpCategory::Memory), clocked);

    obs::PerfCounterStats t1 = agg.totals();
    obs::PerfCounterStats run = obs::PerfCounterStats::since(t0, t1);
    EXPECT_EQ(run.total.scopes, 1u);
    EXPECT_EQ(run.total.cycles, 0u);
    EXPECT_EQ(run.category(OpCategory::Memory).scopes, 1u);
    agg.clear();
}

TEST(ObsPerfAggregatorConcurrencyTest, ProducersRaceATotalsReader)
{
    PerfOn on;
    auto &agg = obs::PerfAggregator::instance();
    agg.clear();

    constexpr int kThreads = 4;
    constexpr int kOps = 5000;
    std::atomic<bool> done{false};
    std::thread reader([&] {
        while (!done.load(std::memory_order_acquire)) {
            obs::PerfCounterStats t = agg.totals();
            // Bounded while producers run; never torn into nonsense.
            // (cycles/instructions are separate atomics, so a mid-run
            // sum may catch them unequal — only the bounds are exact.)
            EXPECT_LE(t.total.scopes,
                      static_cast<uint64_t>(kThreads) * kOps);
            EXPECT_LE(t.total.cycles,
                      static_cast<uint64_t>(kThreads) * kOps);
        }
    });
    std::vector<std::thread> producers;
    for (int t = 0; t < kThreads; ++t)
        producers.emplace_back([&] {
            perf::CounterValues d;
            d.cycles = 1;
            d.instructions = 1;
            d.measured = true;
            for (int i = 0; i < kOps; ++i)
                agg.accumulate(
                    i % static_cast<int>(obs::kPerfCategories), d);
        });
    for (std::thread &t : producers)
        t.join();
    done.store(true, std::memory_order_release);
    reader.join();

    obs::PerfCounterStats t = agg.totals();
    EXPECT_EQ(t.total.scopes, uint64_t{kThreads} * kOps);
    EXPECT_EQ(t.total.cycles, uint64_t{kThreads} * kOps);
    agg.clear();
}

// ---- callback gauges under a racing snapshotter ----------------------------

TEST(ObsGaugeConcurrencyTest, CallbackGaugesRaceASnapshottingReader)
{
    auto &reg = obs::MetricsRegistry::instance();
    std::atomic<int64_t> source{0};
    reg.gaugeFn("obs_test.perf_race_gauge", [&source] {
        return source.load(std::memory_order_relaxed);
    });

    constexpr int kOps = 20000;
    std::atomic<bool> done{false};
    std::thread reader([&] {
        // Snapshot both formats the whole time the source moves: the
        // provider callback must see a coherent value, and rendering
        // must never tear or throw.
        while (!done.load(std::memory_order_acquire)) {
            std::ostringstream js, prom;
            reg.writeJson(js);
            reg.writePrometheus(prom);
            EXPECT_NE(js.str().find("obs_test.perf_race_gauge"),
                      std::string::npos);
        }
    });
    std::thread producer([&] {
        for (int i = 0; i < kOps; ++i)
            source.fetch_add(1, std::memory_order_relaxed);
    });
    producer.join();
    done.store(true, std::memory_order_release);
    reader.join();

    EXPECT_EQ(source.load(), kOps);
    // The registered provider keeps referencing `source` only within
    // this test's lifetime; re-register a self-contained one so later
    // snapshots (other tests, exporters) never touch a dead stack.
    reg.gaugeFn("obs_test.perf_race_gauge", [] { return int64_t{0}; });
}

}  // namespace
}  // namespace ngb
