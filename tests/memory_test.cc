#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <set>

#include "deploy/fusion.h"
#include "graph/builder.h"
#include "graph/executor.h"
#include "models/registry.h"
#include "runtime/arena.h"
#include "runtime/batch_driver.h"
#include "runtime/memory_planner.h"
#include "runtime/parallel_executor.h"
#include "runtime/request_util.h"
#include "runtime/thread_pool.h"
#include "serve/engine.h"
#include "tensor/scratch.h"

/**
 * @file
 * Executable memory planning: arena-backed allocation from Storage
 * through the serving loop.
 *
 *  - Storage allocation accounting, uninitialized/poisoned/external
 *    buffers, Tensor::empty / copyFrom semantics;
 *  - the thread-local scratch arena (growth, reclaim, steady state);
 *  - MemoryPlan O(1) lookup and alias-aware lifetime extension;
 *  - ArenaAllocator placement binding and ArenaPool recycling;
 *  - heap-vs-arena bit-identity across the registry under both
 *    backends, serial/wavefront/batched/fused execution;
 *  - the allocation-count regression: a warmed-up driver or serving
 *    engine performs ZERO tensor mallocs per request.
 */

namespace ngb {
namespace {

// Sanitized builds run the kernels an order of magnitude slower, so
// the whole-registry sweeps sample every third model there (the
// ASan/TSan CI leg still covers every model class and both backends)
// and the stress loops shorten. Plain builds sweep everything.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
constexpr size_t kModelStride = 3;
constexpr int kStressIters = 5;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
constexpr size_t kModelStride = 3;
constexpr int kStressIters = 5;
#else
constexpr size_t kModelStride = 1;
constexpr int kStressIters = 20;
#endif
#else
constexpr size_t kModelStride = 1;
constexpr int kStressIters = 20;
#endif

::testing::AssertionResult
outputsBitIdentical(const std::vector<Tensor> &a,
                    const std::vector<Tensor> &b)
{
    std::string diff = bitDifference(a, b);
    if (diff.empty())
        return ::testing::AssertionSuccess();
    return ::testing::AssertionFailure() << diff;
}

// ---- Storage accounting & uninitialized allocation ------------------------

TEST(StorageTest, HeapAllocationIsCounted)
{
    uint64_t c0 = Storage::heapAllocCount();
    uint64_t b0 = Storage::heapAllocBytes();
    int64_t l0 = Storage::liveBytes();
    {
        Tensor t = Tensor::empty(Shape{64, 64}, DType::F32);
        EXPECT_EQ(Storage::heapAllocCount(), c0 + 1);
        EXPECT_EQ(Storage::heapAllocBytes(), b0 + 64 * 64 * 4);
        EXPECT_EQ(Storage::liveBytes(), l0 + 64 * 64 * 4);
    }
    EXPECT_EQ(Storage::liveBytes(), l0);  // freed on last release
    EXPECT_GE(Storage::peakLiveBytes(), l0 + 64 * 64 * 4);
}

TEST(StorageTest, ExternalMemoryIsNotCountedOrFreed)
{
    std::vector<float> backing(16, 7.5f);
    uint64_t c0 = Storage::heapAllocCount();
    {
        Tensor t = Tensor::fromExternal(backing.data(), Shape{4, 4});
        EXPECT_EQ(Storage::heapAllocCount(), c0);
        EXPECT_FALSE(t.storage()->ownsMemory());
        EXPECT_FLOAT_EQ(t.flatAt(5), 7.5f);
        t.flatSet(5, 1.25f);  // writes through to caller memory
    }
    EXPECT_FLOAT_EQ(backing[5], 1.25f);
}

TEST(StorageTest, PoisonFillsUninitializedBuffers)
{
    bool was = Storage::poisonEnabled();
    Storage::setPoison(true);
    Tensor t = Tensor::empty(Shape{32}, DType::F32);
    const uint8_t *raw = t.storage()->raw();
    for (size_t i = 0; i < 32 * 4; ++i)
        ASSERT_EQ(raw[i], Storage::kPoisonByte) << "byte " << i;
    // zeros() must stay zero-filled regardless of poison.
    Tensor z = Tensor::zeros(Shape{8});
    for (int64_t i = 0; i < z.numel(); ++i)
        EXPECT_EQ(z.flatAt(i), 0.0f);
    Storage::setPoison(was);
}

TEST(TensorTest, ValueFactoriesFullyWriteUninitializedBuffers)
{
    bool was = Storage::poisonEnabled();
    Storage::setPoison(true);  // leftovers would be 0xA5 garbage
    Tensor f = Tensor::full(Shape{3, 5}, 2.0f, DType::F16);
    for (int64_t i = 0; i < f.numel(); ++i)
        EXPECT_EQ(f.flatAt(i), 2.0f);
    Tensor a = Tensor::arange(Shape{7});
    for (int64_t i = 0; i < a.numel(); ++i)
        EXPECT_EQ(a.flatAt(i), static_cast<float>(i));
    Tensor r = Tensor::randn(Shape{64}, 5);
    for (int64_t i = 0; i < r.numel(); ++i)
        EXPECT_TRUE(std::isfinite(r.flatAt(i)));
    Storage::setPoison(was);
}

TEST(TensorTest, CopyFromHandlesStridesShapesAndDtypes)
{
    Tensor src = Tensor::arange(Shape{4, 6});
    // Rank change, same numel (the reshape semantics).
    Tensor flat = Tensor::empty(Shape{24}).copyFrom(src);
    for (int64_t i = 0; i < 24; ++i)
        EXPECT_EQ(flat.flatAt(i), src.flatAt(i));
    // Non-contiguous source: logical (row-major) order is preserved.
    Tensor tr = src.transpose(0, 1);
    Tensor dst = Tensor::empty(Shape{6, 4}).copyFrom(tr);
    for (int64_t i = 0; i < 24; ++i)
        EXPECT_EQ(dst.flatAt(i), tr.flatAt(i));
    // Dtype conversion.
    Tensor half = Tensor::empty(Shape{4, 6}, DType::F16).copyFrom(src);
    EXPECT_EQ(half.flatAt(7), src.flatAt(7));  // small ints exact in f16
    EXPECT_THROW(Tensor::empty(Shape{5}).copyFrom(src),
                 std::runtime_error);
}

// ---- Scratch arena --------------------------------------------------------

TEST(ScratchTest, FallsBackToHeapOutsideAnyScope)
{
    Tensor t = scratchEmpty(Shape{8});
    EXPECT_FALSE(isScratch(t));
    t.flatSet(0, 1.0f);  // usable
}

TEST(ScratchTest, ScopedAllocationsAreArenaBackedAndReclaimed)
{
    uint64_t warm;
    {
        ScratchScope warmup;  // force block growth once
        scratchEmpty(Shape{1024});
        warm = Storage::heapAllocCount();
    }
    {
        ScratchScope scope;
        Tensor a = scratchEmpty(Shape{256});
        Tensor b = scratchEmpty(Shape{256});
        EXPECT_TRUE(isScratch(a));
        EXPECT_TRUE(isScratch(b));
        EXPECT_NE(a.dataF32(), b.dataF32());
        EXPECT_EQ(Storage::heapAllocCount(), warm);  // no new blocks
    }
    {
        // The scope reclaimed: same bytes are handed out again.
        ScratchScope scope;
        Tensor c = scratchEmpty(Shape{256});
        EXPECT_TRUE(isScratch(c));
        EXPECT_EQ(Storage::heapAllocCount(), warm);
    }
    EXPECT_GT(ScratchArena::local().highWaterBytes(), 0);
}

TEST(ScratchTest, NestedScopesReclaimOnlyTheirOwnAllocations)
{
    ScratchScope outer;
    Tensor keep = scratchEmpty(Shape{16});
    keep.fillZero();
    float *inner_ptr = nullptr;
    {
        ScratchScope inner;
        Tensor tmp = scratchEmpty(Shape{16});
        inner_ptr = tmp.dataF32();
    }
    // The inner allocation was reclaimed, the outer one untouched.
    Tensor again = scratchEmpty(Shape{16});
    EXPECT_EQ(again.dataF32(), inner_ptr);
    for (int64_t i = 0; i < keep.numel(); ++i)
        EXPECT_EQ(keep.flatAt(i), 0.0f);
}

TEST(ScratchTest, ToContiguousHelpersPassThroughWithoutCopy)
{
    Tensor x = Tensor::arange(Shape{4, 4});
    EXPECT_EQ(toContiguousF32(x).storage().get(), x.storage().get());
    EXPECT_EQ(toContiguous(x).storage().get(), x.storage().get());
    ScratchScope scope;
    Tensor m = toContiguousF32(x.transpose(0, 1));
    EXPECT_TRUE(m.isContiguous());
    EXPECT_TRUE(isScratch(m));
    for (int64_t i = 0; i < m.numel(); ++i)
        EXPECT_EQ(m.flatAt(i), x.transpose(0, 1).flatAt(i));
}

// ---- MemoryPlan lookup & alias-aware lifetimes ----------------------------

TEST(MemoryPlanTest, IndexedFindMatchesExhaustiveScan)
{
    ModelConfig mc;
    mc.batch = 1;
    mc.seqLen = 8;
    mc.testScale = 8;
    Graph g = models::findModel("swin_t").build(mc);
    Schedule s = Schedule::wavefront(g);
    MemoryPlan plan = planMemory(g, s);
    ASSERT_FALSE(plan.placements.empty());
    for (const Node &n : g.nodes()) {
        for (size_t i = 0; i < n.outShapes.size(); ++i) {
            Value v{n.id, static_cast<int>(i)};
            const TensorPlacement *got = plan.find(v);
            const TensorPlacement *want = nullptr;
            for (const TensorPlacement &p : plan.placements)
                if (p.value == v)
                    want = &p;
            EXPECT_EQ(got, want) << "node " << n.id << " out " << i;
        }
    }
    EXPECT_EQ(plan.find({999999, 0}), nullptr);
}

TEST(MemoryPlanTest, ViewLifetimesExtendTheirProducer)
{
    // x -> relu -> permute(view) -> ... long tail ... ; the permute's
    // consumer runs levels later, so relu's buffer must stay live
    // until then even though relu itself has no later direct reader.
    Graph g;
    GraphBuilder b(g);
    Value x = b.input(Shape{4, 8, 16});
    Value r = b.relu(x);
    Value p = b.permute(r, {0, 2, 1});
    // A chain on an unrelated branch to create intermediate levels.
    Value other = b.gelu(b.relu(b.gelu(b.relu(x))));
    Value pc = b.contiguous(p);
    b.output(b.add(pc, b.permute(other, {0, 2, 1})));
    Schedule s = Schedule::wavefront(g);
    MemoryPlan plan = planMemory(g, s);

    const TensorPlacement *relu_p = plan.find({r.node, 0});
    const TensorPlacement *perm_p = plan.find({p.node, 0});
    ASSERT_NE(relu_p, nullptr);
    ASSERT_NE(perm_p, nullptr);
    // The producer lives at least as long as its view.
    EXPECT_GE(relu_p->lastLevel, perm_p->lastLevel);
    EXPECT_TRUE(verifyNoAliasing(plan));
}

TEST(MemoryPlanTest, AliasChainsExtendTransitively)
{
    Graph g;
    GraphBuilder b(g);
    Value x = b.input(Shape{2, 6, 10});
    Value r = b.relu(x);
    Value v1 = b.permute(r, {0, 2, 1});
    Value v2 = b.slice(v1, 1, 0, 5);
    Value v3 = b.squeeze(b.unsqueeze(v2, 0), 0);
    b.output(b.relu(v3));
    MemoryPlan plan = planMemory(g, Schedule::wavefront(g));
    const TensorPlacement *root = plan.find({r.node, 0});
    const TensorPlacement *leaf = plan.find({v3.node, 0});
    ASSERT_NE(root, nullptr);
    ASSERT_NE(leaf, nullptr);
    EXPECT_GE(root->lastLevel, leaf->lastLevel);
}

// ---- ArenaAllocator / ArenaPool -------------------------------------------

TEST(ArenaAllocatorTest, BindsPlannedValuesAtTheirOffsets)
{
    Graph g;
    GraphBuilder b(g);
    Value x = b.input(Shape{4, 32});
    Value h = b.gelu(b.linear(b.relu(x), 32, true, "fc"));
    b.output(h);
    MemoryPlan plan = planMemory(g, Schedule::wavefront(g));
    ASSERT_GT(plan.arenaBytes, 0);

    auto block = std::make_shared<Storage>(
        static_cast<size_t>(plan.arenaBytes), /*zero=*/false);
    ArenaAllocator alloc(plan, block);
    uint64_t c0 = Storage::heapAllocCount();
    for (const TensorPlacement &p : plan.placements) {
        const Node &n = g.node(p.value.node);
        Tensor t = alloc.allocate(n, static_cast<size_t>(p.value.index));
        EXPECT_TRUE(t.isContiguous());
        EXPECT_EQ(t.storage().get(), block.get());
        EXPECT_EQ(t.offset() * static_cast<int64_t>(dtypeSize(t.dtype())),
                  p.offset);
    }
    EXPECT_EQ(Storage::heapAllocCount(), c0);  // zero mallocs
    EXPECT_EQ(alloc.fallbacks(), 0);
    EXPECT_EQ(alloc.planned(),
              static_cast<int64_t>(plan.placements.size()));
    EXPECT_LE(alloc.boundPeakBytes(), plan.arenaBytes);

    // Unplanned values fall back to the heap and are counted.
    Node fake;
    fake.id = 424242;
    fake.outShapes = {Shape{3}};
    fake.outDtypes = {DType::F32};
    Tensor f = alloc.allocate(fake, 0);
    EXPECT_NE(f.storage().get(), block.get());
    EXPECT_EQ(alloc.fallbacks(), 1);
}

TEST(ArenaPoolTest, RecyclesBlocksOnceOutputsAreDropped)
{
    ArenaPool pool;
    pool.configure(4096);
    auto b1 = pool.acquire();
    Storage *p1 = b1.get();
    b1.reset();  // caller dropped every output view
    auto b2 = pool.acquire();
    EXPECT_EQ(b2.get(), p1);  // same block reused
    EXPECT_EQ(pool.blocks(), 1u);

    // A still-referenced block must NOT be handed out again.
    auto b3 = pool.acquire();
    EXPECT_NE(b3.get(), b2.get());
    EXPECT_EQ(pool.blocks(), 2u);
}

// ---- Heap-vs-arena bit-identity across the registry -----------------------

TEST(ArenaExecutionTest, BitIdenticalToHeapAcrossRegistryAndBackends)
{
    ThreadPool pool(4);
    const auto &registry = models::modelRegistry();
    for (size_t mi = 0; mi < registry.size(); mi += kModelStride) {
        const auto &info = registry[mi];
        ModelConfig mc;
        mc.batch = 1;
        mc.seqLen = 8;
        mc.testScale = 8;
        Graph g = info.build(mc);
        std::vector<std::vector<Tensor>> reqs = {makeRequestInputs(g, 1),
                                                 makeRequestInputs(g, 2)};
        for (const Backend *backend :
             {&referenceBackend(), &optimizedBackend()}) {
            // Serial heap walk = the ground truth for this backend.
            Executor serial(g, *backend);
            std::vector<std::vector<Tensor>> want = {
                serial.run(reqs[0]), serial.run(reqs[1])};

            ParallelExecutor wavefront(g, pool, *backend, /*arena=*/true);
            EXPECT_TRUE(outputsBitIdentical(wavefront.run(reqs[0]),
                                            want[0]))
                << info.name << " wavefront/" << backend->name();

            BatchDriver batch(g, pool, *backend, /*arena=*/true);
            std::vector<std::vector<Tensor>> got = batch.run(reqs);
            for (size_t r = 0; r < reqs.size(); ++r)
                EXPECT_TRUE(outputsBitIdentical(got[r], want[r]))
                    << info.name << " batch/" << backend->name()
                    << " request " << r;
            EXPECT_GT(batch.profile().memory.arenaTensors, 0)
                << info.name;
        }
    }
}

TEST(ArenaExecutionTest, FusedGraphsBitIdenticalToHeapFused)
{
    ThreadPool pool(4);
    const auto &registry = models::modelRegistry();
    for (size_t mi = 0; mi < registry.size(); mi += kModelStride) {
        const auto &info = registry[mi];
        ModelConfig mc;
        mc.batch = 1;
        mc.seqLen = 8;
        mc.testScale = 8;
        Graph g = applyFusion(info.build(mc), executableFusionConfig());
        std::vector<Tensor> inputs = makeRequestInputs(g, 3);
        // Same backend, same fused graph: arena vs heap must be
        // bit-identical (the fused-vs-unfused contract is
        // fusion_exec_test's job).
        Executor serial(g, referenceBackend());
        std::vector<Tensor> want = serial.run(inputs);
        BatchDriver arena_driver(g, pool, referenceBackend(),
                                 /*arena=*/true);
        EXPECT_TRUE(
            outputsBitIdentical(arena_driver.run({inputs})[0], want))
            << info.name << " fused arena";
    }
}

// ---- Allocation-count regression ------------------------------------------

/**
 * Run @p round until one full iteration performs zero Storage heap
 * allocations (work stealing decides which pool worker first sees
 * which node, so per-thread scratch arenas can grow on any early
 * round), then return the allocations of three further iterations —
 * the steady state a serving loop lives in. Fails the test if the
 * warm-up never quiesces.
 */
template <typename F>
uint64_t
steadyStateAllocs(F round, int max_warmup = 40)
{
    // One clean round is not quiescence: stealing decides which worker
    // executes which node, so a cold worker can still grow its scratch
    // arena rounds later. Demand several consecutive alloc-free rounds
    // — by then every worker has almost surely seen the peak-demand
    // nodes — before opening the measured window.
    int quiet = 0;
    for (int i = 0; i < max_warmup && quiet < 3; ++i) {
        uint64_t before = Storage::heapAllocCount();
        round();
        quiet = Storage::heapAllocCount() == before ? quiet + 1 : 0;
    }
    if (quiet < 3) {
        ADD_FAILURE() << "allocations never quiesced in " << max_warmup
                      << " warm-up rounds";
        return ~uint64_t{0};
    }
    uint64_t before = Storage::heapAllocCount();
    for (int j = 0; j < 3; ++j)
        round();
    return Storage::heapAllocCount() - before;
}

uint64_t
steadyStateBatchAllocs(const std::string &model, const Backend &backend,
                       ThreadPool &pool)
{
    ModelConfig mc;
    mc.batch = 1;
    mc.seqLen = 8;
    mc.testScale = 8;
    Graph g = models::findModel(model).build(mc);
    std::vector<std::vector<Tensor>> reqs = {makeRequestInputs(g, 1),
                                             makeRequestInputs(g, 2)};
    BatchDriver driver(g, pool, backend, /*arena=*/true);
    // Outputs dropped each round -> blocks and scratch recycle.
    return steadyStateAllocs([&] { driver.run(reqs); });
}

TEST(AllocationRegressionTest, SteadyStateBatchDriverIsMallocFree)
{
    ThreadPool pool(4);
    for (const char *model : {"vit_b", "gpt2", "resnet50", "bert",
                              "mobilenet_v2", "swin_t"}) {
        EXPECT_EQ(steadyStateBatchAllocs(model, referenceBackend(), pool),
                  0u)
            << model << " reference";
        EXPECT_EQ(steadyStateBatchAllocs(model, optimizedBackend(), pool),
                  0u)
            << model << " optimized";
    }
}

TEST(AllocationRegressionTest, SteadyStateWavefrontIsMallocFree)
{
    ThreadPool pool(4);
    ModelConfig mc;
    mc.batch = 1;
    mc.seqLen = 8;
    mc.testScale = 8;
    Graph g = models::findModel("vit_b").build(mc);
    std::vector<Tensor> inputs = makeRequestInputs(g, 1);
    ParallelExecutor ex(g, pool, referenceBackend(), /*arena=*/true);
    // Outputs dropped between runs -> the one block recycles.
    EXPECT_EQ(steadyStateAllocs([&] { ex.run(inputs); }), 0u);
    EXPECT_EQ(ex.profile().memory.heapAllocs, 0);
    EXPECT_TRUE(ex.profile().memory.arena);
    EXPECT_GT(ex.profile().memory.boundPeakBytes, 0);
}

TEST(AllocationRegressionTest, SteadyStateServingEngineIsMallocFree)
{
    ThreadPool pool(2);
    serve::EngineConfig cfg;
    cfg.scale = 8;
    cfg.seqLen = 8;
    cfg.arena = true;
    serve::EngineCache cache(pool, cfg);
    serve::Engine &engine = cache.get("gpt2");
    std::vector<std::vector<Tensor>> reqs = {
        makeRequestInputs(engine.graph(), 11),
        makeRequestInputs(engine.graph(), 12)};
    EXPECT_EQ(steadyStateAllocs([&] { engine.run(reqs); }), 0u);
    EXPECT_TRUE(engine.arenaEnabled());
    EXPECT_GT(engine.arenaBlocks(), 0u);
    auto stats = cache.stats();
    EXPECT_GT(stats.arenaBlocks, 0u);
    EXPECT_GT(stats.arenaBlockBytes, 0);
}

// ---- Wavefront stress: planner no-alias under real concurrent writes ------

TEST(ArenaStressTest, ConcurrentWavefrontWritesRespectThePlan)
{
    // A wide graph (many independent branches per level) executed
    // repeatedly over arena-backed buffers with maximum parallelism:
    // any planner aliasing bug or data race becomes a bit-identity
    // failure here (and a report under the ASan/TSan CI legs).
    Graph g;
    GraphBuilder b(g);
    Value x = b.input(Shape{4, 64});
    std::vector<Value> branches;
    for (int i = 0; i < 12; ++i) {
        Value h = b.relu(b.addScalar(x, static_cast<double>(i)));
        h = b.gelu(h);
        h = b.add(h, x);
        branches.push_back(h);
    }
    Value acc = branches[0];
    for (size_t i = 1; i < branches.size(); ++i)
        acc = b.add(acc, branches[i]);
    b.output(b.softmax(acc));

    ThreadPool pool(8);
    std::vector<Tensor> inputs = makeRequestInputs(g, 7);
    Executor serial(g);
    std::vector<Tensor> want = serial.run(inputs);
    ParallelExecutor ex(g, pool, defaultBackend(), /*arena=*/true);
    ASSERT_TRUE(verifyNoAliasing(ex.memoryPlan()));
    for (int iter = 0; iter < kStressIters; ++iter)
        ASSERT_TRUE(outputsBitIdentical(ex.run(inputs), want))
            << "iteration " << iter;

    // The same plan hammered through concurrent batched requests.
    BatchDriver driver(g, pool, defaultBackend(), /*arena=*/true);
    std::vector<std::vector<Tensor>> reqs;
    for (int r = 0; r < 16; ++r)
        reqs.push_back(makeRequestInputs(g, 7));  // identical inputs
    for (int iter = 0; iter < 5; ++iter) {
        auto outs = driver.run(reqs);
        for (size_t r = 0; r < reqs.size(); ++r)
            ASSERT_TRUE(outputsBitIdentical(outs[r], want))
                << "iteration " << iter << " request " << r;
    }
}

}  // namespace
}  // namespace ngb
