#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "deploy/flow.h"
#include "graph/executor.h"
#include "models/registry.h"
#include "profiler/nongemm_report.h"
#include "profiler/svg_chart.h"

namespace ngb {
namespace {

TEST(NonGemmReportTest, DetrHasTwoNormalizationVariants)
{
    // The paper's example output: DETR employs both a custom frozen
    // batch norm and the library LayerNorm.
    ModelConfig cfg;
    Graph g = models::findModel("detr").build(cfg);
    NonGemmReport r = buildNonGemmReport(g);
    const CategoryVariants *norm = r.find(OpCategory::Normalization);
    ASSERT_NE(norm, nullptr);
    EXPECT_GE(norm->variantCount(), 2);
    EXPECT_TRUE(norm->variants.count(OpKind::FrozenBatchNorm2d));
    EXPECT_TRUE(norm->variants.count(OpKind::LayerNorm));
}

TEST(NonGemmReportTest, ExcludesGemmOps)
{
    ModelConfig cfg;
    cfg.testScale = 8;
    Graph g = models::findModel("bert").build(cfg);
    NonGemmReport r = buildNonGemmReport(g);
    EXPECT_EQ(r.find(OpCategory::Gemm), nullptr);
}

TEST(NonGemmReportTest, InstanceCountsMatchGraph)
{
    ModelConfig cfg;
    cfg.seqLen = 8;
    Graph g = models::findModel("gpt2").build(cfg);
    NonGemmReport r = buildNonGemmReport(g);
    int64_t total = 0;
    for (const CategoryVariants &v : r.categories)
        total += v.instanceCount();
    EXPECT_EQ(total, g.stats().numNonGemmOps);
}

TEST(NonGemmReportTest, DomainTraceSeparatesTasks)
{
    ModelConfig cfg;
    cfg.testScale = 8;
    cfg.seqLen = 8;
    std::vector<std::pair<std::string, Graph>> gs;
    gs.emplace_back("OD", models::findModel("mask_rcnn").build(cfg));
    gs.emplace_back("NLP", models::findModel("gpt2").build(cfg));
    DomainTrace t = buildDomainTrace(gs);
    // RoI selection ops only exist in the detection domain.
    EXPECT_TRUE(t.variantsByDomain.at("OD").count(
        OpCategory::RoiSelection));
    EXPECT_FALSE(t.variantsByDomain.at("NLP").count(
        OpCategory::RoiSelection));
    EXPECT_GT(t.instancesByDomain.at("OD"), 0);
}

TEST(NonGemmReportTest, PrintersProduceOutput)
{
    ModelConfig cfg;
    cfg.testScale = 8;
    Graph g = models::findModel("segformer").build(cfg);
    std::ostringstream os;
    printNonGemmReport(buildNonGemmReport(g), os);
    EXPECT_NE(os.str().find("Interpolation"), std::string::npos);

    std::vector<std::pair<std::string, Graph>> gs;
    gs.emplace_back("IS", std::move(g));
    std::ostringstream os2;
    printDomainTrace(buildDomainTrace(gs), os2);
    EXPECT_NE(os2.str().find("IS"), std::string::npos);
}

TEST(RooflineSvgTest, EmitsDotsAndRoofs)
{
    ModelConfig cfg;
    cfg.testScale = 4;
    Graph g = models::findModel("vit_b").build(cfg);
    auto plan = makePyTorchFlow()->plan(g, {true, false});
    CostModel cm(platformA());
    auto timings = cm.priceAll(plan);
    std::ostringstream os;
    writeRooflineSvg(plan, timings, platformA().gpu, "test roofline", os);
    std::string s = os.str();
    EXPECT_EQ(s.find("<svg"), 0u);
    EXPECT_NE(s.find("test roofline"), std::string::npos);
    size_t dots = 0, pos = 0;
    while ((pos = s.find("<circle", pos)) != std::string::npos) {
        ++dots;
        ++pos;
    }
    EXPECT_GT(dots, 20u);
    // Two roof segments.
    size_t lines = 0;
    pos = 0;
    while ((pos = s.find("<line", pos)) != std::string::npos) {
        ++lines;
        ++pos;
    }
    EXPECT_GE(lines, 2u);
}

class CnnExtensionSweep : public ::testing::TestWithParam<const char *>
{
};

TEST_P(CnnExtensionSweep, BuildsAndExecutes)
{
    const auto &info = models::findModel(GetParam());
    EXPECT_EQ(info.task, "IC");
    ModelConfig cfg;
    cfg.testScale = 8;
    Graph g = info.build(cfg);
    Executor ex(g);
    auto out = ex.run({Tensor::randn(g.shapeOf(g.graphInputs()[0]), 9)});
    EXPECT_EQ(out[0].shape(), (Shape{1, 1000}));
}

TEST_P(CnnExtensionSweep, ParamCountsReasonable)
{
    const auto &info = models::findModel(GetParam());
    ModelConfig cfg;
    double m =
        static_cast<double>(info.build(cfg).stats().totalParams) / 1e6;
    if (std::string(GetParam()) == "mobilenet_v2")
        EXPECT_NEAR(m, 3.5, 1.0);
    else if (std::string(GetParam()) == "vgg16")
        EXPECT_NEAR(m, 138, 25);  // fc6 input differs from 7x7 pooling
    else
        EXPECT_NEAR(m, 25.6, 3.0);
}

INSTANTIATE_TEST_SUITE_P(Models, CnnExtensionSweep,
                         ::testing::Values("resnet50", "mobilenet_v2",
                                           "vgg16"));

TEST(CnnExtensionTest, VggHasNoNormalization)
{
    ModelConfig cfg;
    Graph g = models::findModel("vgg16").build(cfg);
    NonGemmReport r = buildNonGemmReport(g);
    EXPECT_EQ(r.find(OpCategory::Normalization), nullptr);
}

TEST(CnnExtensionTest, MobileNetDepthwiseConvsPresent)
{
    ModelConfig cfg;
    Graph g = models::findModel("mobilenet_v2").build(cfg);
    int64_t depthwise = 0;
    for (const Node &n : g.nodes())
        if (n.kind == OpKind::Conv2d && n.attrs.getI("groups", 1) > 1)
            ++depthwise;
    EXPECT_EQ(depthwise, 17);  // one per inverted residual block
}

}  // namespace
}  // namespace ngb
