#include <gtest/gtest.h>

#include "graph/executor.h"
#include "models/common.h"
#include "models/models.h"
#include "models/resnet.h"
#include "models/swin_backbone.h"

namespace ngb {
namespace {

using namespace models;

TEST(CommonBlocksTest, MhsaPreservesTokenShape)
{
    Graph g;
    GraphBuilder b(g);
    Value x = b.input(Shape{2, 6, 32});
    Value y = multiHeadSelfAttention(b, x, 4, false, false, "attn");
    EXPECT_EQ(g.shapeOf(y), (Shape{2, 6, 32}));
}

TEST(CommonBlocksTest, FusedQkvUsesSplit)
{
    Graph g;
    GraphBuilder b(g);
    Value x = b.input(Shape{1, 4, 16});
    multiHeadSelfAttention(b, x, 2, /*fused_qkv=*/true, false, "attn");
    int split = 0, linear = 0;
    for (const Node &n : g.nodes()) {
        split += n.kind == OpKind::Split;
        linear += n.kind == OpKind::Linear;
    }
    EXPECT_EQ(split, 1);
    EXPECT_EQ(linear, 2);  // c_attn + out_proj
}

TEST(CommonBlocksTest, SeparateQkvUsesFourLinears)
{
    Graph g;
    GraphBuilder b(g);
    Value x = b.input(Shape{1, 4, 16});
    multiHeadSelfAttention(b, x, 2, /*fused_qkv=*/false, false, "attn");
    int linear = 0;
    for (const Node &n : g.nodes())
        linear += n.kind == OpKind::Linear;
    EXPECT_EQ(linear, 4);  // q, k, v, out
}

TEST(CommonBlocksTest, HeadSplitIsZeroCopy)
{
    // The strided-batched-GEMM modeling: splitHeadsOp adds only
    // metadata ops, no Contiguous copy.
    Graph g;
    GraphBuilder b(g);
    Value x = b.input(Shape{1, 4, 16});
    size_t before = g.size();
    splitHeadsOp(b, x, 2);
    for (size_t i = before; i < g.size(); ++i)
        EXPECT_TRUE(g.node(static_cast<int>(i)).cost.zeroCopy)
            << g.node(static_cast<int>(i)).name;
}

TEST(CommonBlocksTest, HeadMergeCopiesOnce)
{
    Graph g;
    GraphBuilder b(g);
    Value x = b.input(Shape{2, 4, 8});  // [B*H, T, hd]
    size_t before = g.size();
    mergeHeadsOp(b, x, 1, 2);
    int copies = 0;
    for (size_t i = before; i < g.size(); ++i)
        copies += g.node(static_cast<int>(i)).kind == OpKind::Contiguous;
    EXPECT_EQ(copies, 1);
}

TEST(CommonBlocksTest, MaskedAttentionAddsSelectKernel)
{
    Graph g;
    GraphBuilder b(g);
    Value x = b.input(Shape{1, 4, 16});
    multiHeadSelfAttention(b, x, 2, false, /*mask_tokens=*/true, "attn");
    int where = 0;
    for (const Node &n : g.nodes())
        where += n.kind == OpKind::Where;
    EXPECT_EQ(where, 1);
}

TEST(CommonBlocksTest, EncoderLayersExecute)
{
    Graph g;
    GraphBuilder b(g);
    Value x = b.input(Shape{1, 4, 16});
    Value pre = encoderLayerPreNorm(b, x, 2, 32, "pre");
    Value post = encoderLayerPostNorm(b, pre, 2, 32, "post");
    b.output(post);
    Executor ex(g);
    auto out = ex.run({Tensor::randn(Shape{1, 4, 16}, 55)});
    EXPECT_EQ(out[0].shape(), (Shape{1, 4, 16}));
}

TEST(SwinBackboneTest, StageGeometry)
{
    Graph g;
    GraphBuilder b(g);
    Value img = b.input(Shape{1, 3, 64, 64});
    SwinSpec spec{8, {1, 1, 1, 1}, {2, 2, 2, 2}, 2};
    SwinFeatures f = buildSwinBackbone(b, img, spec, "swin");
    ASSERT_EQ(f.stages.size(), 4u);
    // Strides 4, 8, 16, 32; channels double per stage.
    EXPECT_EQ(f.stages[0].h, 16);
    EXPECT_EQ(f.stages[0].c, 8);
    EXPECT_EQ(f.stages[1].h, 8);
    EXPECT_EQ(f.stages[1].c, 16);
    EXPECT_EQ(f.stages[3].h, 2);
    EXPECT_EQ(f.stages[3].c, 64);
    for (const SwinStage &s : f.stages)
        EXPECT_EQ(g.shapeOf(s.tokens), (Shape{1, s.h * s.w, s.c}));
}

TEST(SwinBackboneTest, ShiftedBlocksRoll)
{
    Graph g;
    GraphBuilder b(g);
    Value img = b.input(Shape{1, 3, 32, 32});
    SwinSpec spec{8, {2}, {2}, 2};  // one stage, one shifted block
    buildSwinBackbone(b, img, spec, "swin");
    int rolls = 0;
    for (const Node &n : g.nodes())
        rolls += n.kind == OpKind::Roll;
    EXPECT_EQ(rolls, 4);  // 2 shifts before + 2 after in the odd block
}

TEST(SwinBackboneTest, VariantSpecs)
{
    EXPECT_EQ(swinVariant("t").depths[2], 6);
    EXPECT_EQ(swinVariant("s").depths[2], 18);
    EXPECT_EQ(swinVariant("b").embedDim, 128);
    EXPECT_THROW(swinVariant("xxl"), std::runtime_error);
}

TEST(ResNetBackboneTest, FeatureStrides)
{
    Graph g;
    GraphBuilder b(g);
    Value img = b.input(Shape{1, 3, 64, 64});
    ResNetFeatures f = resnet50Backbone(b, img, FrozenBnStyle::NativeBn,
                                        4, "rn");
    EXPECT_EQ(g.shapeOf(f.c2)[2], 16);  // stride 4
    EXPECT_EQ(g.shapeOf(f.c3)[2], 8);   // stride 8
    EXPECT_EQ(g.shapeOf(f.c4)[2], 4);   // stride 16
    EXPECT_EQ(g.shapeOf(f.c5)[2], 2);   // stride 32
    EXPECT_EQ(g.shapeOf(f.c5)[1], 512); // 2048 / width 4
}

TEST(ResNetBackboneTest, BnStyleChangesAttribution)
{
    auto categoryShare = [](FrozenBnStyle style, OpCategory cat) {
        Graph g;
        GraphBuilder b(g);
        Value img = b.input(Shape{1, 3, 64, 64});
        resnet50Backbone(b, img, style, 4, "rn");
        int64_t count = 0;
        for (const Node &n : g.nodes())
            count += n.category() == cat;
        return count;
    };
    // NormModule: frozen BNs are Normalization nodes.
    EXPECT_GT(categoryShare(FrozenBnStyle::NormModule,
                            OpCategory::Normalization),
              40);
    // Elementwise: the same math shows up as Mul/Add element-wise ops.
    EXPECT_EQ(categoryShare(FrozenBnStyle::Elementwise,
                            OpCategory::Normalization),
              0);
    EXPECT_GT(categoryShare(FrozenBnStyle::Elementwise,
                            OpCategory::ElementWise),
              100);
}

TEST(ResNetClassifierTest, BuildsAndExecutesTiny)
{
    ModelConfig cfg;
    cfg.testScale = 8;
    Graph g = buildResNet50(cfg);
    EXPECT_EQ(g.shapeOf(g.graphOutputs()[0]), (Shape{1, 1000}));
    Executor ex(g);
    auto out = ex.run({Tensor::randn(Shape{1, 3, 64, 64}, 66)});
    EXPECT_EQ(out[0].numel(), 1000);
}

TEST(ResNetClassifierTest, PaperScaleGemmShareIsHigh)
{
    // Fig. 3 (a): the classic CNN is built from conv + BN + ReLU, so
    // GEMM flops dominate overwhelmingly.
    ModelConfig cfg;
    Graph g = buildResNet50(cfg);
    GraphStats s = g.stats();
    EXPECT_GT(s.gemmFlops / s.totalFlops, 0.95);
    EXPECT_NEAR(static_cast<double>(s.totalParams) / 1e6, 25.6, 3.0);
}

}  // namespace
}  // namespace ngb
