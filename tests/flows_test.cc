#include <gtest/gtest.h>

#include <set>

#include "deploy/flow.h"
#include "graph/builder.h"
#include "platform/cost_model.h"

namespace ngb {
namespace {

/** A small transformer-ish graph exercising every op class. */
Graph
testGraph()
{
    Graph g;
    g.setName("test");
    GraphBuilder b(g);
    Value x = b.input(Shape{1, 8, 32});
    Value h = b.layerNorm(x);
    h = b.linear(h, 32, true, "fc1");
    h = b.gelu(h);
    h = b.mulScalar(h, 0.5);
    h = b.addScalar(h, 1.0);
    Value v = b.view(h, Shape{8, 32});
    Value t = b.transpose(v, 0, 1);
    Value c = b.contiguous(t);
    Value r = b.view(c, Shape{1, 32, 8});
    Value y = b.softmax(r, -1);
    b.output(y);
    return g;
}

void
expectCoversAllNodes(const Graph &g, const ExecutionPlan &p)
{
    std::set<int> seen;
    for (const KernelGroup &kg : p.groups)
        for (int id : kg.nodeIds)
            EXPECT_TRUE(seen.insert(id).second);
    for (const Node &n : g.nodes())
        if (!n.inputs.empty())
            EXPECT_TRUE(seen.count(n.id)) << n.name;
}

TEST(FlowFactoryTest, NamesResolve)
{
    EXPECT_EQ(makeFlow("pytorch")->name(), "pytorch");
    EXPECT_EQ(makeFlow("pt")->name(), "pytorch");
    EXPECT_EQ(makeFlow("inductor")->name(), "inductor");
    EXPECT_EQ(makeFlow("ort")->name(), "ort");
    EXPECT_EQ(makeFlow("trt")->name(), "tensorrt");
    EXPECT_THROW(makeFlow("tvm"), std::runtime_error);
}

TEST(PyTorchFlowTest, OneGroupPerNode)
{
    Graph g = testGraph();
    auto plan = makePyTorchFlow()->plan(g, {true, false});
    expectCoversAllNodes(g, plan);
    for (const KernelGroup &kg : plan.groups)
        EXPECT_EQ(kg.nodeIds.size(), 1u);
    EXPECT_EQ(plan.fusedNodeCount(), 0);
}

TEST(PyTorchFlowTest, GpuPlacementSkipsZeroCopy)
{
    Graph g = testGraph();
    auto plan = makePyTorchFlow()->plan(g, {true, false});
    for (const KernelGroup &kg : plan.groups) {
        if (kg.zeroCopy)
            EXPECT_FALSE(kg.onGpu);
        else
            EXPECT_TRUE(kg.onGpu);
    }
}

TEST(PyTorchFlowTest, CpuOnlyPlacesNothingOnGpu)
{
    Graph g = testGraph();
    auto plan = makePyTorchFlow()->plan(g, {false, false});
    EXPECT_FALSE(plan.gpuEnabled);
    for (const KernelGroup &kg : plan.groups)
        EXPECT_FALSE(kg.onGpu);
}

TEST(PyTorchFlowTest, F16HalvesBytes)
{
    Graph g = testGraph();
    auto p32 = makePyTorchFlow()->plan(g, {true, false});
    auto p16 = makePyTorchFlow()->plan(g, {true, true});
    double b32 = 0, b16 = 0;
    for (size_t i = 0; i < p32.groups.size(); ++i) {
        b32 += p32.groups[i].bytesIn + p32.groups[i].bytesParam;
        b16 += p16.groups[i].bytesIn + p16.groups[i].bytesParam;
    }
    EXPECT_NEAR(b16, b32 / 2, 1.0);
}

TEST(InductorFlowTest, FusesPointwiseRegions)
{
    Graph g = testGraph();
    auto plan = makeInductorFlow()->plan(g, {true, false});
    expectCoversAllNodes(g, plan);
    EXPECT_GT(plan.fusedNodeCount(), 0);
}

TEST(InductorFlowTest, FasterThanEagerOnCostModel)
{
    Graph g = testGraph();
    CostModel cm(platformA());
    double eager = cm.latencyUs(makePyTorchFlow()->plan(g, {true, false}));
    double comp = cm.latencyUs(makeInductorFlow()->plan(g, {true, false}));
    EXPECT_LT(comp, eager);
}

TEST(OrtFlowTest, MemoryOpsFallBackToCpuWithTransfers)
{
    Graph g = testGraph();
    auto plan = makeOrtFlow()->plan(g, {true, false});
    expectCoversAllNodes(g, plan);
    bool saw_fallback = false;
    for (const KernelGroup &kg : plan.groups) {
        const Node &n = g.node(kg.nodeIds[0]);
        if (n.category() == OpCategory::Memory) {
            EXPECT_FALSE(kg.onGpu) << n.name;
            EXPECT_GT(kg.transferBytes, 0.0) << n.name;
            saw_fallback = true;
        } else {
            EXPECT_TRUE(kg.onGpu) << n.name;
        }
    }
    EXPECT_TRUE(saw_fallback);
}

TEST(OrtFlowTest, NoFallbackWithoutGpu)
{
    Graph g = testGraph();
    auto plan = makeOrtFlow()->plan(g, {false, false});
    for (const KernelGroup &kg : plan.groups)
        EXPECT_EQ(kg.transferBytes, 0.0);
}

TEST(OrtFlowTest, CheaperDispatchThanEager)
{
    Graph g = testGraph();
    auto plan = makeOrtFlow()->plan(g, {true, false});
    for (const KernelGroup &kg : plan.groups)
        EXPECT_EQ(kg.dispatchUsOverride, 1.5);
}

TEST(TensorRtFlowTest, FusesAndSpeedsUp)
{
    // Conv+BN+ReLU backbone-ish graph.
    Graph g;
    GraphBuilder b(g);
    Value x = b.input(Shape{1, 8, 16, 16});
    Value v = x;
    for (int i = 0; i < 3; ++i) {
        v = b.conv2d(v, 8, 3, 1, 1, 1, false,
                     "conv" + std::to_string(i));
        v = b.batchNorm2d(v, true);
        v = b.relu(v);
    }
    b.output(v);

    auto trt = makeTensorRtFlow()->plan(g, {true, false});
    expectCoversAllNodes(g, trt);
    EXPECT_EQ(trt.groups.size(), 3u);  // three fused conv blocks
    for (const KernelGroup &kg : trt.groups)
        EXPECT_EQ(kg.category, OpCategory::Gemm);

    CostModel cm(platformA());
    double eager = cm.latencyUs(makePyTorchFlow()->plan(g, {true, false}));
    EXPECT_LT(cm.latencyUs(trt), eager);
}

TEST(TensorRtFlowTest, ShortChainsStayUnfused)
{
    Graph g;
    GraphBuilder b(g);
    Value x = b.input(Shape{64});
    Value v = b.addScalar(x, 1.0);
    v = b.tanh(v);  // 2-chain < TRT's 3-op pattern
    b.output(v);
    auto plan = makeTensorRtFlow()->plan(g, {true, false});
    EXPECT_EQ(plan.fusedNodeCount(), 0);
}

TEST(FlowComparisonTest, OrtShiftsTimeIntoMemoryCategory)
{
    Graph g = testGraph();
    CostModel cm(platformA());
    auto time_in_memory = [&](const ExecutionPlan &p) {
        double mem = 0, total = 0;
        auto timings = cm.priceAll(p);
        for (size_t i = 0; i < p.groups.size(); ++i) {
            double t = timings[i].totalUs();
            total += t;
            if (p.groups[i].category == OpCategory::Memory)
                mem += t;
        }
        return mem / total;
    };
    double pt = time_in_memory(makePyTorchFlow()->plan(g, {true, false}));
    double ort = time_in_memory(makeOrtFlow()->plan(g, {true, false}));
    EXPECT_GT(ort, pt);
}

}  // namespace
}  // namespace ngb
