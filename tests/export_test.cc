#include <gtest/gtest.h>

#include <sstream>

#include "core/bench.h"
#include "deploy/flow.h"
#include "models/registry.h"
#include "profiler/svg_chart.h"
#include "profiler/trace_export.h"

namespace ngb {
namespace {

ProfileReport
smallReport(const std::string &model = "gpt2")
{
    BenchConfig c;
    c.model = model;
    c.testScale = 4;
    return Bench::run(c);
}

TEST(SvgChartTest, EmitsWellFormedSvg)
{
    std::ostringstream os;
    SvgChartOptions opts;
    opts.title = "unit test chart";
    writeSvgChart({smallReport()}, opts, os);
    std::string s = os.str();
    EXPECT_EQ(s.find("<svg"), 0u);
    EXPECT_NE(s.find("</svg>"), std::string::npos);
    EXPECT_NE(s.find("unit test chart"), std::string::npos);
    // Opening/closing rects balance.
    size_t rects = 0, pos = 0;
    while ((pos = s.find("<rect", pos)) != std::string::npos) {
        ++rects;
        ++pos;
    }
    EXPECT_GT(rects, 3u);
}

TEST(SvgChartTest, LegendListsCategories)
{
    std::ostringstream os;
    SvgChartOptions opts;
    writeSvgChart({smallReport()}, opts, os);
    std::string s = os.str();
    EXPECT_NE(s.find(">GEMM<"), std::string::npos);
    EXPECT_NE(s.find(">Memory<"), std::string::npos);
    EXPECT_NE(s.find(">Activation<"), std::string::npos);
}

TEST(SvgChartTest, LegendCanBeDisabled)
{
    std::ostringstream with, without;
    SvgChartOptions opts;
    writeSvgChart({smallReport()}, opts, with);
    opts.showLegend = false;
    writeSvgChart({smallReport()}, opts, without);
    EXPECT_GT(with.str().size(), without.str().size());
}

TEST(SvgChartTest, MultipleBarsAndCustomLabels)
{
    std::vector<ProfileReport> rs = {smallReport("gpt2"),
                                     smallReport("bert")};
    std::ostringstream os;
    SvgChartOptions opts;
    writeSvgChart(rs, opts, os, {"first", "second"});
    std::string s = os.str();
    EXPECT_NE(s.find(">first<"), std::string::npos);
    EXPECT_NE(s.find(">second<"), std::string::npos);
}

TEST(SvgChartTest, ColorsAreStablePerCategory)
{
    EXPECT_EQ(svgCategoryColor(OpCategory::Gemm),
              svgCategoryColor(OpCategory::Gemm));
    EXPECT_NE(svgCategoryColor(OpCategory::Gemm),
              svgCategoryColor(OpCategory::Memory));
}

TEST(SvgChartTest, AbsoluteModeScalesBars)
{
    std::ostringstream norm_os, abs_os;
    SvgChartOptions opts;
    writeSvgChart({smallReport()}, opts, norm_os);
    opts.normalize = false;
    writeSvgChart({smallReport()}, opts, abs_os);
    // Absolute mode shows a ms y-axis, normalized shows percent.
    EXPECT_NE(abs_os.str().find("ms</text>"), std::string::npos);
    EXPECT_NE(norm_os.str().find("%</text>"), std::string::npos);
}

class TraceFixture : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        ModelConfig mc;
        mc.testScale = 8;
        mc.seqLen = 8;
        graph_ = models::findModel("gpt2").build(mc);
        plan_ = makePyTorchFlow()->plan(graph_, {true, false});
        CostModel cm(platformA());
        timings_ = cm.priceAll(plan_);
    }

    Graph graph_;
    ExecutionPlan plan_;
    std::vector<GroupTiming> timings_;
};

TEST_F(TraceFixture, EmitsOneEventPerTrack)
{
    std::ostringstream os;
    writeChromeTrace(plan_, timings_, os);
    std::string s = os.str();
    EXPECT_EQ(s.find("{\"traceEvents\":["), 0u);
    EXPECT_NE(s.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
    EXPECT_NE(s.find("\"tid\":\"host\""), std::string::npos);
    EXPECT_NE(s.find("\"tid\":\"gpu\""), std::string::npos);
}

TEST_F(TraceFixture, BracesBalance)
{
    std::ostringstream os;
    writeChromeTrace(plan_, timings_, os);
    std::string s = os.str();
    int depth = 0;
    for (char c : s) {
        if (c == '{')
            ++depth;
        if (c == '}')
            --depth;
        ASSERT_GE(depth, 0);
    }
    EXPECT_EQ(depth, 0);
}

TEST_F(TraceFixture, TimesAreMonotonePerTrack)
{
    std::ostringstream os;
    writeChromeTrace(plan_, timings_, os);
    std::string s = os.str();
    // Host timestamps appear in emission order; verify they never
    // decrease by scanning "tid":"host"..."ts": pairs.
    const std::string pat = "\"tid\":\"host\",\"ts\":";
    double prev = -1;
    size_t pos = 0;
    while ((pos = s.find(pat, pos)) != std::string::npos) {
        pos += pat.size();
        double ts = std::stod(s.substr(pos));
        EXPECT_GE(ts, prev);
        prev = ts;
    }
    EXPECT_GE(prev, 0.0);
}

TEST_F(TraceFixture, CategoriesCarriedInEvents)
{
    std::ostringstream os;
    writeChromeTrace(plan_, timings_, os);
    EXPECT_NE(os.str().find("\"cat\":\"Activation\""), std::string::npos);
    EXPECT_NE(os.str().find("\"cat\":\"GEMM\""), std::string::npos);
}

}  // namespace
}  // namespace ngb
