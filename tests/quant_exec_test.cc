/**
 * @file
 * Executable int8 quantization: the quant rewrite as a runnable graph
 * transform, proven by a differential suite (every registry model x
 * {int8, int8-raw, w8} x {reference, optimized} backend x {serial,
 * wavefront, batch} runtime, plus engine-cache serving) and unit tests
 * for the kernel/pack/elimination building blocks.
 *
 * Accuracy contracts under test:
 *  - quantized vs float baseline: relative-L2 tolerance
 *    (quantDifference) — int8 rounding legitimately moves every
 *    element, so element-wise tolerances are the wrong yardstick;
 *  - int8 vs int8-raw on ONE backend: bit-identical — Q/DQ
 *    elimination evaluates the same float expressions in the same
 *    order;
 *  - serial vs wavefront vs batch on one graph/backend:
 *    bit-identical — scheduling must never change results;
 *  - across backends under activation quantization: relative-L2 —
 *    the backends' float ops reassociate, an absmax scale that moves
 *    one ulp shifts EVERY int8 code of that tensor one step.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <string>
#include <vector>

#include "graph/builder.h"
#include "graph/executor.h"
#include "graph/validate.h"
#include "models/registry.h"
#include "ops/backend.h"
#include "quant/qdq_elim.h"
#include "quant/quant_kernels.h"
#include "quant/quant_mode.h"
#include "quant/weight_pack.h"
#include "runtime/batch_driver.h"
#include "runtime/parallel_executor.h"
#include "runtime/request_util.h"
#include "runtime/thread_pool.h"
#include "serve/engine.h"

namespace ngb {
namespace {

using quant::QuantExecMode;

void
expectValid(const Graph &g, const std::string &context)
{
    ValidationResult vr = validateGraph(g);
    EXPECT_TRUE(vr.ok()) << context << ":\n" << formatIssues(vr);
}

// ---- differential suite over the registry ---------------------------------

/**
 * Scale-8 test build, halved again for the very largest graphs
 * (mixtral, the RCNNs) so the reference-backend runs the matrix below
 * repeats stay affordable — the quant eligibility cutoff
 * (minInFeatures 32) still passes at scale 16 on every such model.
 */
Graph
buildSmall(const models::ModelInfo &info)
{
    Graph g = info.build(ModelConfig{1, 8, false, 0, 8});
    if (g.size() > 400)
        g = info.build(ModelConfig{1, 8, false, 0, 16});
    return g;
}

class QuantDifferentialTest
    : public ::testing::TestWithParam<models::ModelInfo>
{
};

TEST_P(QuantDifferentialTest, QuantizedMatchesFloatAcrossRuntimes)
{
    const models::ModelInfo &info = GetParam();
    Graph g = buildSmall(info);
    std::vector<Tensor> inputs = makeRequestInputs(g, 42);

    Executor floatRef(g, referenceBackend());
    std::vector<Tensor> want = floatRef.run(inputs);
    ThreadPool pool(4);

    for (QuantExecMode mode : {QuantExecMode::Int8,
                               QuantExecMode::Int8Raw,
                               QuantExecMode::WeightOnly}) {
        QuantizeStats st;
        Graph q = quant::applyQuantMode(g, mode, &st);
        std::string ctx =
            info.name + std::string(" [") + quant::quantModeName(mode) +
            "]";
        expectValid(q, ctx);
        ASSERT_EQ(makeRequestInputs(q, 42).size(), inputs.size())
            << ctx << ": quantization changed the graph inputs";

        const bool act_quant = mode != QuantExecMode::WeightOnly;
        std::vector<Tensor> ref_got;
        for (const Backend *backend :
             {&referenceBackend(), &optimizedBackend()}) {
            Executor qex(q, *backend);
            std::vector<Tensor> got = qex.run(inputs);

            // Tolerance vs the float baseline (vacuously exact when
            // the model has no linear wide enough to quantize).
            EXPECT_EQ(quantDifference(got, want), "")
                << ctx << " [" << backend->name() << "]";
            if (st.linearsQuantized == 0)
                EXPECT_EQ(bitDifference(got, want), "") << ctx;

            // Scheduling invariance: wavefront == serial, batch ==
            // serial, bit for bit.
            ParallelExecutor pex(q, pool, *backend);
            EXPECT_EQ(bitDifference(pex.run(inputs), got), "")
                << ctx << " [" << backend->name() << " wavefront]";
            BatchDriver driver(q, pool, *backend);
            auto outs = driver.run({inputs});
            EXPECT_EQ(bitDifference(outs[0], got), "")
                << ctx << " [" << backend->name() << " batch]";

            // Cross-backend: relative-L2 under activation
            // quantization (scale ulp amplification), element-wise
            // closeness for float-activation w8.
            if (backend == &referenceBackend()) {
                ref_got = got;
            } else if (act_quant) {
                EXPECT_EQ(quantDifference(got, ref_got), "")
                    << ctx << " [cross-backend]";
            } else {
                EXPECT_EQ(closeDifference(got, ref_got), "")
                    << ctx << " [cross-backend]";
            }
        }
    }
}

TEST_P(QuantDifferentialTest, Int8EliminationIsBitIdenticalToRaw)
{
    const models::ModelInfo &info = GetParam();
    Graph g = buildSmall(info);
    std::vector<Tensor> inputs = makeRequestInputs(g, 42);

    QuantizeStats raw_st, elim_st;
    Graph raw = quant::applyQuantMode(g, QuantExecMode::Int8Raw, &raw_st);
    Graph elim = quant::applyQuantMode(g, QuantExecMode::Int8, &elim_st);

    // Elimination only ever removes standalone Q/DQ work.
    EXPECT_LE(elim.size(), raw.size()) << info.name;
    EXPECT_GE(elim_st.qdqPairsCancelled + elim_st.requantFolded,
              elim_st.linearsQuantized > 1 ? 1 : 0)
        << info.name;

    for (const Backend *backend :
         {&referenceBackend(), &optimizedBackend()}) {
        Executor rex(raw, *backend);
        Executor eex(elim, *backend);
        EXPECT_EQ(bitDifference(eex.run(inputs), rex.run(inputs)), "")
            << info.name << " [" << backend->name() << "]";
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllRegistryModels, QuantDifferentialTest,
    ::testing::ValuesIn(models::modelRegistry()),
    [](const ::testing::TestParamInfo<models::ModelInfo> &i) {
        return i.param.name;
    });

// ---- serving: quantized engines -------------------------------------------

TEST(QuantServeTest, EngineCacheKeysOnQuantAndServesWithinTolerance)
{
    ThreadPool pool(2);
    serve::EngineConfig plain;
    plain.scale = 8;
    plain.quant = "off";  // pin: the default tracks $NGB_QUANT
    serve::EngineConfig quantized = plain;
    quantized.quant = "int8";

    serve::EngineCache cache_plain(pool, plain);
    serve::EngineCache cache_quant(pool, quantized);

    serve::Engine &e0 = cache_plain.get("gpt2");
    serve::Engine &e1 = cache_quant.get("gpt2");
    EXPECT_NE(&e0, &e1);
    EXPECT_TRUE(e1.driver().profile().quant.quantized);
    EXPECT_FALSE(e0.driver().profile().quant.quantized);

    std::vector<std::vector<Tensor>> req = {
        makeRequestInputs(e0.graph(), 9)};
    auto a = e0.run(req);
    auto c = e1.run(req);
    EXPECT_EQ(quantDifference(c[0], a[0]), "");

    // The served quantized engine reproduces its own serial executor
    // bit-for-bit.
    Executor s1(e1.graph(), e1.backend());
    EXPECT_EQ(bitDifference(c[0], s1.run(req[0])), "");

    // Quant census flows into the cache-wide stats.
    auto stats = cache_quant.stats();
    EXPECT_TRUE(stats.quant.quantized);
    EXPECT_GT(stats.quant.int8Gemms, 0);
    EXPECT_GT(stats.quant.weightCompression(), 1.8);
}

// ---- weight packing -------------------------------------------------------

TEST(WeightPackTest, PerChannelScalesAreAbsmaxOver127)
{
    Tensor w(Shape{3, 4});
    float vals[3][4] = {{1.0f, -2.0f, 0.5f, 1.5f},
                       {0.0f, 0.0f, 0.0f, 0.0f},
                       {-0.25f, 0.1f, 0.2f, -0.05f}};
    for (int64_t n = 0; n < 3; ++n)
        for (int64_t k = 0; k < 4; ++k)
            w.flatSet(n * 4 + k, vals[n][k]);

    Tensor s = quant::perChannelScales(w);
    ASSERT_EQ(s.numel(), 3);
    EXPECT_FLOAT_EQ(s.flatAt(0), 2.0f / 127.0f);
    EXPECT_FLOAT_EQ(s.flatAt(1), 1.0f);  // all-zero row: no div-by-zero
    EXPECT_FLOAT_EQ(s.flatAt(2), 0.25f / 127.0f);

    // The zero row quantizes to exactly zero.
    Tensor wq = quant::quantizeWeightRows(w, s);
    for (int64_t k = 0; k < 4; ++k)
        EXPECT_EQ(wq.flatAt(4 + k), 0.0f);
}

TEST(WeightPackTest, QuantizeRoundTripStaysWithinHalfStep)
{
    Tensor w = Tensor::randn(Shape{17, 33}, 0xfeed, 0.05f);
    Tensor s = quant::perChannelScales(w);
    Tensor wq = quant::quantizeWeightRows(w, s);
    Tensor back = quant::unpackWeightInt8(wq, s);
    ASSERT_EQ(back.numel(), w.numel());
    for (int64_t n = 0; n < 17; ++n) {
        float step = s.flatAt(n);
        for (int64_t k = 0; k < 33; ++k) {
            int64_t i = n * 33 + k;
            EXPECT_LE(std::abs(back.flatAt(i) - w.flatAt(i)),
                      0.5f * step + 1e-7f)
                << "element " << i;
        }
    }
}

TEST(WeightPackTest, PackedLayoutIsTheTransposeOfRowLayout)
{
    Tensor w = Tensor::randn(Shape{5, 9}, 0xbeef, 0.1f);
    Tensor s = quant::perChannelScales(w);
    Tensor rows = quant::quantizeWeightRows(w, s);   // [N,K]
    Tensor packed = quant::packWeightInt8(w, s);     // [K,N]
    ASSERT_EQ(packed.shape(), (Shape{9, 5}));
    for (int64_t n = 0; n < 5; ++n)
        for (int64_t k = 0; k < 9; ++k)
            EXPECT_EQ(packed.flatAt(k * 5 + n), rows.flatAt(n * 9 + k))
                << "(" << n << "," << k << ")";
}

TEST(WeightPackTest, WeightByteAccountingBeats1p8xOnRealShapes)
{
    Shape w{768, 768};
    int64_t packed = quant::packedWeightBytes(w);
    int64_t f32 = quant::floatWeightBytes(w);
    EXPECT_EQ(f32, 768 * 768 * 4);
    EXPECT_EQ(packed, 768 * 768 + 768 * 4);  // int8 elements + f32 scales
    EXPECT_GT(static_cast<double>(f32) / static_cast<double>(packed),
              1.8);
}

// ---- requantize / saturating cast edge cases ------------------------------

TEST(QuantKernelTest, SatCastI8SaturatesAndRoundsHalfAwayFromZero)
{
    using kernels::qnt::satCastI8;
    EXPECT_EQ(satCastI8(0.0f), 0);
    EXPECT_EQ(satCastI8(0.5f), 1);     // half away from zero
    EXPECT_EQ(satCastI8(-0.5f), -1);
    EXPECT_EQ(satCastI8(126.4f), 126);
    EXPECT_EQ(satCastI8(126.5f), 127);
    EXPECT_EQ(satCastI8(127.0f), 127);
    EXPECT_EQ(satCastI8(127.9f), 127);   // clamp, not wrap
    EXPECT_EQ(satCastI8(1000.0f), 127);
    EXPECT_EQ(satCastI8(-127.5f), -128);
    EXPECT_EQ(satCastI8(-128.0f), -128);
    EXPECT_EQ(satCastI8(-1000.0f), -128);
}

TEST(QuantKernelTest, ZeroScaleIsRejectedLoudly)
{
    Tensor x = Tensor::randn(Shape{4, 8}, 3);
    for (float bad : {0.0f, -1.0f}) {
        EXPECT_THROW(kernels::qnt::quantizeWithScale(x, bad),
                     std::runtime_error)
            << "scale " << bad;
        Tensor s = Tensor::full(Shape{1}, bad);
        EXPECT_THROW(kernels::qnt::scaleValue(s), std::runtime_error)
            << "scale " << bad;
    }
    Tensor inf_s = Tensor::full(Shape{1}, INFINITY);
    EXPECT_THROW(kernels::qnt::scaleValue(inf_s), std::runtime_error);
    EXPECT_THROW(kernels::qnt::scaleValue(Tensor{}), std::runtime_error);
}

TEST(QuantKernelTest, AllZeroActivationQuantizesWithUnitScale)
{
    auto [xq, scale] =
        kernels::qnt::quantizeActivation(Tensor::zeros(Shape{3, 5}));
    EXPECT_FLOAT_EQ(scale.flatAt(0), 1.0f);
    for (int64_t i = 0; i < xq.numel(); ++i)
        EXPECT_EQ(xq.flatAt(i), 0.0f);
}

TEST(QuantKernelTest, PackedAndNaiveGemmsShareBitIdenticalEpilogues)
{
    // i32 accumulation is exact, so the tiled [K,N] kernel and the
    // naive [N,K] kernel must agree to the bit — including ragged
    // edges that exercise partial tiles.
    for (int64_t m : {1, 3, 4, 5}) {
        for (int64_t k : {1, 7, 32, 63}) {
            for (int64_t n : {1, 15, 16, 33}) {
                Tensor x = Tensor::randn(Shape{m, k}, m * 1000 + k, 2.0f);
                Tensor w =
                    Tensor::randn(Shape{n, k}, n * 77 + k, 0.08f);
                Tensor bias = Tensor::randn(Shape{n}, n, 0.1f);
                Tensor ws = quant::perChannelScales(w);
                Tensor wq = quant::quantizeWeightRows(w, ws);
                Tensor wtq = quant::packWeightInt8(w, ws);
                auto [xq, xs] = kernels::qnt::quantizeActivation(x);
                float xscale = kernels::qnt::scaleValue(xs);

                Tensor naive = kernels::qnt::int8LinearRequant(
                    xq, xscale, wq, ws, bias, nullptr, 0);
                Tensor tiled = kernels::qnt::int8LinearPackedRequant(
                    xq, xscale, wtq, ws, bias, nullptr, 0);
                EXPECT_EQ(bitDifference({tiled}, {naive}), "")
                    << "m=" << m << " k=" << k << " n=" << n;

                Tensor w8n =
                    kernels::qnt::w8Linear(x, wq, ws, bias);
                Tensor w8t = kernels::qnt::w8LinearPacked(
                    x, wtq, ws, bias, nullptr, 0);
                EXPECT_EQ(bitDifference({w8t}, {w8n}), "")
                    << "w8 m=" << m << " k=" << k << " n=" << n;
            }
        }
    }
}

// ---- Q/DQ elimination on seeded chains ------------------------------------

/** Two wide linears back to back: the canonical DQ->Q seam. */
Graph
twoLinearChain()
{
    Graph g;
    GraphBuilder b(g);
    Value x = b.input(Shape{4, 64});
    Value h = b.linear(x, 64, true, "fc0");
    b.output(b.linear(h, 32, true, "fc1"));
    return g;
}

TEST(QdqElimTest, CancelsThePairBetweenAdjacentQuantizedLinears)
{
    Graph raw = quant::applyQuantMode(twoLinearChain(),
                                      QuantExecMode::Int8Raw);
    quant::QdqElimStats st;
    Graph elim = quant::eliminateQdq(raw, &st);
    expectValid(elim, "two-linear chain");

    // fc0's Dequantize and fc1's Quantize collapse into one fused
    // requantize; fc1's trailing Dequantize folds into its GEMM.
    EXPECT_EQ(st.pairsCancelled, 1);
    EXPECT_EQ(st.requantFolded, 1);
    EXPECT_LT(elim.size(), raw.size());

    std::vector<Tensor> inputs = makeRequestInputs(raw, 5);
    Executor rex(raw, referenceBackend());
    Executor eex(elim, referenceBackend());
    EXPECT_EQ(bitDifference(eex.run(inputs), rex.run(inputs)), "");
}

TEST(QdqElimTest, FloatGraphPassesThroughUntouched)
{
    Graph g = twoLinearChain();
    quant::QdqElimStats st;
    Graph out = quant::eliminateQdq(g, &st);
    EXPECT_EQ(st.pairsCancelled, 0);
    EXPECT_EQ(st.requantFolded, 0);
    EXPECT_EQ(out.size(), g.size());
}

TEST(QdqElimTest, EliminationShrinksThePlannedTensorFootprint)
{
    // Cancelled float round-trips and folded i32 accumulator tensors
    // never reach the memory plan: the no-reuse footprint must
    // strictly shrink on every registry model. (The lifetime-reused
    // arena PEAK is not monotone — the fused requantize's i8 output
    // can outlive the float tensor it replaced — so the invariant is
    // on totalBytes.)
    for (const models::ModelInfo &info : models::modelRegistry()) {
        Graph g = info.build(ModelConfig{1, 8, false, 0, 8});
        Graph raw = quant::applyQuantMode(g, QuantExecMode::Int8Raw);
        Graph elim = quant::applyQuantMode(g, QuantExecMode::Int8);
        auto raw_plan = buildEnginePlan(raw);
        auto elim_plan = buildEnginePlan(elim);
        EXPECT_LT(elim_plan->memplan.totalBytes,
                  raw_plan->memplan.totalBytes)
            << info.name;
    }
}

// ---- rewrite stats --------------------------------------------------------

TEST(QuantModeTest, ParseAndNameRoundTrip)
{
    using quant::parseQuantMode;
    EXPECT_EQ(parseQuantMode(""), QuantExecMode::Off);
    EXPECT_EQ(parseQuantMode("0"), QuantExecMode::Off);
    EXPECT_EQ(parseQuantMode("off"), QuantExecMode::Off);
    EXPECT_EQ(parseQuantMode("1"), QuantExecMode::Int8);
    EXPECT_EQ(parseQuantMode("int8"), QuantExecMode::Int8);
    EXPECT_EQ(parseQuantMode("int8-raw"), QuantExecMode::Int8Raw);
    EXPECT_EQ(parseQuantMode("raw"), QuantExecMode::Int8Raw);
    EXPECT_EQ(parseQuantMode("w8"), QuantExecMode::WeightOnly);
    EXPECT_EQ(parseQuantMode("weight-only"), QuantExecMode::WeightOnly);
    EXPECT_THROW(parseQuantMode("int4"), std::runtime_error);
    for (QuantExecMode m : {QuantExecMode::Off, QuantExecMode::Int8,
                            QuantExecMode::Int8Raw,
                            QuantExecMode::WeightOnly})
        EXPECT_EQ(parseQuantMode(quant::quantModeName(m)), m);
}

TEST(QuantModeTest, ExecStatsCensusMatchesRewriteStats)
{
    Graph g = models::findModel("gpt2").build(ModelConfig{1, 8, false,
                                                          0, 8});
    QuantizeStats st;
    Graph q = quant::applyQuantMode(g, QuantExecMode::Int8, &st);
    quant::QuantExecStats census = quant::quantExecStatsOf(q);
    EXPECT_TRUE(census.quantized);
    EXPECT_EQ(census.int8Gemms, st.linearsQuantized);
    EXPECT_EQ(census.packedWeightBytes, st.packedWeightBytes);
    EXPECT_EQ(census.floatWeightBytes, st.floatWeightBytes);
    EXPECT_GT(census.weightCompression(), 1.8);

    quant::QuantExecStats off = quant::quantExecStatsOf(g);
    EXPECT_FALSE(off.quantized);
    EXPECT_EQ(off.weightCompression(), 1.0);
}

}  // namespace
}  // namespace ngb
