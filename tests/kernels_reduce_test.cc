#include <gtest/gtest.h>

#include <cmath>

#include "ops/kernels.h"

namespace ngb {
namespace {

namespace kn = kernels;

TEST(SoftmaxTest, RowsSumToOne)
{
    Tensor x = Tensor::randn(Shape{5, 9}, 31, 2.0f);
    Tensor y = kn::softmax(x, -1);
    for (int64_t r = 0; r < 5; ++r) {
        float sum = 0;
        for (int64_t j = 0; j < 9; ++j) {
            float v = y.at({r, j});
            EXPECT_GE(v, 0.0f);
            sum += v;
        }
        EXPECT_NEAR(sum, 1.0f, 1e-5f);
    }
}

TEST(SoftmaxTest, ShiftInvariance)
{
    Tensor x = Tensor::randn(Shape{1, 8}, 32);
    Tensor y0 = kn::softmax(x, -1);
    Tensor y1 = kn::softmax(kn::addScalar(x, 50.0f), -1);
    for (int64_t i = 0; i < 8; ++i)
        EXPECT_NEAR(y0.flatAt(i), y1.flatAt(i), 1e-5f);
}

TEST(SoftmaxTest, NumericallyStableForLargeLogits)
{
    Tensor x = Tensor::full(Shape{1, 4}, 1e4f);
    Tensor y = kn::softmax(x, -1);
    for (int64_t i = 0; i < 4; ++i)
        EXPECT_NEAR(y.flatAt(i), 0.25f, 1e-5f);
}

TEST(SoftmaxTest, NonLastDim)
{
    Tensor x = Tensor::randn(Shape{3, 4}, 33);
    Tensor y = kn::softmax(x, 0);
    for (int64_t c = 0; c < 4; ++c) {
        float sum = 0;
        for (int64_t r = 0; r < 3; ++r)
            sum += y.at({r, c});
        EXPECT_NEAR(sum, 1.0f, 1e-5f);
    }
}

TEST(SoftmaxTest, OrdersPreserved)
{
    Tensor x = Tensor::arange(Shape{1, 6});
    Tensor y = kn::softmax(x, -1);
    for (int64_t i = 1; i < 6; ++i)
        EXPECT_GT(y.flatAt(i), y.flatAt(i - 1));
}

TEST(LogSoftmaxTest, ExpMatchesSoftmax)
{
    Tensor x = Tensor::randn(Shape{2, 5}, 34);
    Tensor ls = kn::logSoftmax(x, -1);
    Tensor sm = kn::softmax(x, -1);
    for (int64_t i = 0; i < 10; ++i)
        EXPECT_NEAR(std::exp(ls.flatAt(i)), sm.flatAt(i), 1e-5f);
}

TEST(TopKTest, ReturnsDescendingValuesAndIndices)
{
    Tensor x = Tensor::zeros(Shape{1, 6});
    float vals[] = {0.1f, 0.9f, 0.4f, 0.7f, 0.2f, 0.6f};
    for (int64_t i = 0; i < 6; ++i)
        x.flatSet(i, vals[i]);
    auto [v, idx] = kn::topk(x, 3);
    EXPECT_FLOAT_EQ(v.at({0, 0}), 0.9f);
    EXPECT_FLOAT_EQ(v.at({0, 1}), 0.7f);
    EXPECT_FLOAT_EQ(v.at({0, 2}), 0.6f);
    EXPECT_EQ(static_cast<int>(idx.at({0, 0})), 1);
    EXPECT_EQ(static_cast<int>(idx.at({0, 1})), 3);
    EXPECT_EQ(static_cast<int>(idx.at({0, 2})), 5);
}

TEST(TopKTest, PerRowIndependence)
{
    Tensor x = Tensor::arange(Shape{2, 4});
    auto [v, idx] = kn::topk(x, 1);
    EXPECT_FLOAT_EQ(v.at({0, 0}), 3.0f);
    EXPECT_FLOAT_EQ(v.at({1, 0}), 7.0f);
    EXPECT_EQ(static_cast<int>(idx.at({1, 0})), 3);
}

TEST(TopKTest, KTooLargeThrows)
{
    EXPECT_THROW(kn::topk(Tensor::zeros(Shape{1, 3}), 4),
                 std::runtime_error);
}

TEST(GatherTest, SelectsAlongDim)
{
    Tensor x = Tensor::arange(Shape{3, 4});
    Tensor idx = Tensor::zeros(Shape{2, 4}, DType::I32);
    for (int64_t j = 0; j < 4; ++j) {
        idx.set({0, j}, 2.0f);  // row 2
        idx.set({1, j}, 0.0f);  // row 0
    }
    Tensor y = kn::gather(x, 0, idx);
    EXPECT_EQ(y.shape(), (Shape{2, 4}));
    EXPECT_FLOAT_EQ(y.at({0, 1}), x.at({2, 1}));
    EXPECT_FLOAT_EQ(y.at({1, 3}), x.at({0, 3}));
}

TEST(CumSumTest, InclusivePrefixSums)
{
    Tensor x = Tensor::full(Shape{1, 5}, 1.0f);
    Tensor y = kn::cumsum(x, -1);
    for (int64_t i = 0; i < 5; ++i)
        EXPECT_FLOAT_EQ(y.flatAt(i), static_cast<float>(i + 1));
}

TEST(CumSumTest, AlongFirstDim)
{
    Tensor x = Tensor::full(Shape{3, 2}, 2.0f);
    Tensor y = kn::cumsum(x, 0);
    EXPECT_FLOAT_EQ(y.at({2, 0}), 6.0f);
    EXPECT_FLOAT_EQ(y.at({0, 1}), 2.0f);
}

TEST(EmbeddingTest, GathersRows)
{
    Tensor table = Tensor::arange(Shape{10, 4});
    Tensor ids = Tensor::zeros(Shape{2, 3}, DType::I32);
    ids.set({0, 0}, 7.0f);
    ids.set({1, 2}, 3.0f);
    Tensor y = kn::embedding(ids, table);
    EXPECT_EQ(y.shape(), (Shape{2, 3, 4}));
    EXPECT_FLOAT_EQ(y.at({0, 0, 1}), table.at({7, 1}));
    EXPECT_FLOAT_EQ(y.at({1, 2, 0}), table.at({3, 0}));
    EXPECT_FLOAT_EQ(y.at({0, 1, 0}), table.at({0, 0}));
}

TEST(EmbeddingTest, OutOfRangeIdThrows)
{
    Tensor table = Tensor::zeros(Shape{4, 2});
    Tensor ids = Tensor::full(Shape{1}, 9.0f, DType::I32);
    EXPECT_THROW(kn::embedding(ids, table), std::runtime_error);
}

class SoftmaxDimSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(SoftmaxDimSweep, SumsToOneAlongAnyDim)
{
    int dim = GetParam();
    Tensor x = Tensor::randn(Shape{3, 4, 5}, 35);
    Tensor y = kn::softmax(x, dim);
    EXPECT_EQ(y.shape(), x.shape());
    // Sum along the reduced dim at a fixed point of the others.
    float sum = 0;
    int64_t extent = x.shape()[static_cast<size_t>(dim)];
    for (int64_t i = 0; i < extent; ++i) {
        std::vector<int64_t> coord = {1, 1, 1};
        coord[static_cast<size_t>(dim)] = i;
        sum += y.at(coord);
    }
    EXPECT_NEAR(sum, 1.0f, 1e-5f);
}

INSTANTIATE_TEST_SUITE_P(Dims, SoftmaxDimSweep, ::testing::Values(0, 1, 2));

}  // namespace
}  // namespace ngb
