#include <gtest/gtest.h>

#include <cmath>

#include "ops/kernels.h"

namespace ngb {
namespace {

namespace kn = kernels;

TEST(BinaryOpTest, AddSameShape)
{
    Tensor a = Tensor::arange(Shape{2, 3});
    Tensor b = Tensor::full(Shape{2, 3}, 10.0f);
    Tensor y = kn::add(a, b);
    for (int64_t i = 0; i < 6; ++i)
        EXPECT_FLOAT_EQ(y.flatAt(i), static_cast<float>(i) + 10.0f);
}

TEST(BinaryOpTest, BroadcastRowVector)
{
    Tensor a = Tensor::arange(Shape{2, 3});
    Tensor b = Tensor::arange(Shape{3});
    Tensor y = kn::add(a, b);
    EXPECT_EQ(y.shape(), (Shape{2, 3}));
    EXPECT_FLOAT_EQ(y.at({1, 2}), 5.0f + 2.0f);
}

TEST(BinaryOpTest, BroadcastColumnAgainstRow)
{
    Tensor col = Tensor::arange(Shape{3, 1});
    Tensor row = Tensor::arange(Shape{1, 4});
    Tensor y = kn::mul(col, row);
    EXPECT_EQ(y.shape(), (Shape{3, 4}));
    EXPECT_FLOAT_EQ(y.at({2, 3}), 6.0f);
}

TEST(BinaryOpTest, IncompatibleShapesThrow)
{
    EXPECT_THROW(kn::add(Tensor::zeros(Shape{2, 3}),
                         Tensor::zeros(Shape{2, 4})),
                 std::runtime_error);
}

TEST(BinaryOpTest, SubMulDivSemantics)
{
    Tensor a = Tensor::full(Shape{4}, 6.0f);
    Tensor b = Tensor::full(Shape{4}, 2.0f);
    EXPECT_FLOAT_EQ(kn::sub(a, b).flatAt(0), 4.0f);
    EXPECT_FLOAT_EQ(kn::mul(a, b).flatAt(0), 12.0f);
    EXPECT_FLOAT_EQ(kn::div(a, b).flatAt(0), 3.0f);
}

TEST(UnaryOpTest, NegSqrtPow)
{
    Tensor x = Tensor::full(Shape{3}, 4.0f);
    EXPECT_FLOAT_EQ(kn::neg(x).flatAt(0), -4.0f);
    EXPECT_FLOAT_EQ(kn::sqrtOp(x).flatAt(0), 2.0f);
    EXPECT_FLOAT_EQ(kn::powScalar(x, 3.0f).flatAt(0), 64.0f);
    EXPECT_FLOAT_EQ(kn::addScalar(x, 1.0f).flatAt(0), 5.0f);
    EXPECT_FLOAT_EQ(kn::mulScalar(x, 0.5f).flatAt(0), 2.0f);
}

TEST(UnaryOpTest, ExpLogInverse)
{
    Tensor x = Tensor::full(Shape{4}, 1.7f);
    Tensor y = kn::logOp(kn::expOp(x));
    EXPECT_NEAR(y.flatAt(0), 1.7f, 1e-5f);
}

TEST(WhereTest, SelectsByCondition)
{
    Tensor cond = Tensor::zeros(Shape{4});
    cond.flatSet(1, 1.0f);
    cond.flatSet(3, 1.0f);
    Tensor a = Tensor::full(Shape{4}, 1.0f);
    Tensor b = Tensor::full(Shape{4}, -1.0f);
    Tensor y = kn::where(cond, a, b);
    EXPECT_FLOAT_EQ(y.flatAt(0), -1.0f);
    EXPECT_FLOAT_EQ(y.flatAt(1), 1.0f);
    EXPECT_FLOAT_EQ(y.flatAt(2), -1.0f);
    EXPECT_FLOAT_EQ(y.flatAt(3), 1.0f);
}

TEST(WhereTest, BroadcastCondition)
{
    Tensor cond = Tensor::full(Shape{1}, 1.0f);
    Tensor a = Tensor::arange(Shape{2, 2});
    Tensor b = Tensor::zeros(Shape{2, 2});
    Tensor y = kn::where(cond, a, b);
    EXPECT_FLOAT_EQ(y.at({1, 1}), 3.0f);
}

TEST(ActivationTest, ReluClampsNegatives)
{
    Tensor x = Tensor::zeros(Shape{3});
    x.flatSet(0, -2.0f);
    x.flatSet(2, 5.0f);
    Tensor y = kn::relu(x);
    EXPECT_FLOAT_EQ(y.flatAt(0), 0.0f);
    EXPECT_FLOAT_EQ(y.flatAt(1), 0.0f);
    EXPECT_FLOAT_EQ(y.flatAt(2), 5.0f);
}

class ActivationSweep : public ::testing::TestWithParam<float>
{
};

TEST_P(ActivationSweep, GeluMatchesErfDefinition)
{
    float v = GetParam();
    Tensor x = Tensor::full(Shape{1}, v);
    float want = 0.5f * v * (1.0f + std::erf(v / std::sqrt(2.0f)));
    EXPECT_NEAR(kn::gelu(x).flatAt(0), want, 1e-5f);
}

TEST_P(ActivationSweep, SiluMatchesDefinition)
{
    float v = GetParam();
    Tensor x = Tensor::full(Shape{1}, v);
    float want = v / (1.0f + std::exp(-v));
    EXPECT_NEAR(kn::silu(x).flatAt(0), want, 1e-5f);
}

TEST_P(ActivationSweep, SigmoidInUnitInterval)
{
    Tensor x = Tensor::full(Shape{1}, GetParam());
    float y = kn::sigmoid(x).flatAt(0);
    EXPECT_GT(y, 0.0f);
    EXPECT_LT(y, 1.0f);
}

INSTANTIATE_TEST_SUITE_P(Values, ActivationSweep,
                         ::testing::Values(-5.0f, -1.0f, -0.1f, 0.0f, 0.1f,
                                           1.0f, 3.0f, 10.0f));

TEST(ActivationTest, GeluMonotoneForPositive)
{
    float prev = -1.0f;
    for (float v = 0.0f; v < 4.0f; v += 0.25f) {
        float y = kn::gelu(Tensor::full(Shape{1}, v)).flatAt(0);
        EXPECT_GT(y, prev);
        prev = y;
    }
}

TEST(ActivationTest, TanhAndErfOddSymmetry)
{
    for (float v : {0.3f, 1.2f, 2.5f}) {
        Tensor p = Tensor::full(Shape{1}, v);
        Tensor m = Tensor::full(Shape{1}, -v);
        EXPECT_NEAR(kn::tanhOp(p).flatAt(0), -kn::tanhOp(m).flatAt(0),
                    1e-6f);
        EXPECT_NEAR(kn::erfOp(p).flatAt(0), -kn::erfOp(m).flatAt(0),
                    1e-6f);
    }
}

TEST(BinaryOpTest, OperatesOnStridedViews)
{
    Tensor a = Tensor::arange(Shape{2, 3});
    Tensor at = a.permute({1, 0});  // [3,2] strided
    Tensor b = Tensor::full(Shape{3, 2}, 1.0f);
    Tensor y = kn::add(at, b);
    EXPECT_FLOAT_EQ(y.at({2, 1}), a.at({1, 2}) + 1.0f);
}

}  // namespace
}  // namespace ngb
