#include <gtest/gtest.h>

#include <cmath>

#include "tensor/tensor.h"

namespace ngb {
namespace {

TEST(ShapeTest, NumelAndRank)
{
    Shape s{2, 3, 4};
    EXPECT_EQ(s.rank(), 3u);
    EXPECT_EQ(s.numel(), 24);
    EXPECT_EQ(s.dim(-1), 4);
    EXPECT_EQ(s.dim(0), 2);
    EXPECT_EQ(Shape{}.numel(), 1);
}

TEST(ShapeTest, NegativeIndexOutOfRangeThrows)
{
    Shape s{2, 3};
    EXPECT_THROW(s.dim(2), std::out_of_range);
    EXPECT_THROW(s.dim(-3), std::out_of_range);
}

TEST(ShapeTest, ContiguousStrides)
{
    Shape s{2, 3, 4};
    auto st = s.contiguousStrides();
    ASSERT_EQ(st.size(), 3u);
    EXPECT_EQ(st[0], 12);
    EXPECT_EQ(st[1], 4);
    EXPECT_EQ(st[2], 1);
}

TEST(ShapeTest, Equality)
{
    EXPECT_EQ((Shape{2, 3}), (Shape{2, 3}));
    EXPECT_NE((Shape{2, 3}), (Shape{3, 2}));
    EXPECT_EQ((Shape{1, 2}).str(), "[1, 2]");
}

TEST(DTypeTest, Sizes)
{
    EXPECT_EQ(dtypeSize(DType::F32), 4u);
    EXPECT_EQ(dtypeSize(DType::F16), 2u);
    EXPECT_EQ(dtypeSize(DType::I8), 1u);
    EXPECT_EQ(dtypeSize(DType::I32), 4u);
    EXPECT_EQ(dtypeSize(DType::B8), 1u);
}

TEST(DTypeTest, HalfRoundTripExactValues)
{
    // Values exactly representable in binary16 survive a round trip.
    for (float v : {0.0f, 1.0f, -1.0f, 0.5f, 2.0f, 1024.0f, -0.25f,
                    65504.0f}) {
        EXPECT_EQ(halfToFloat(floatToHalf(v)), v) << v;
    }
}

class HalfPrecisionSweep : public ::testing::TestWithParam<float>
{
};

TEST_P(HalfPrecisionSweep, RelativeErrorBounded)
{
    float v = GetParam();
    float r = halfToFloat(floatToHalf(v));
    // binary16 has 11 significand bits: rel error <= 2^-11.
    EXPECT_NEAR(r, v, std::abs(v) * 4.9e-4f + 1e-7f);
}

INSTANTIATE_TEST_SUITE_P(Values, HalfPrecisionSweep,
                         ::testing::Values(0.1f, -0.3f, 3.14159f, 123.456f,
                                           -9876.5f, 1e-3f, -2.71828f,
                                           42.42f));

TEST(DTypeTest, HalfOverflowGoesToInf)
{
    uint16_t h = floatToHalf(1e6f);
    EXPECT_TRUE(std::isinf(halfToFloat(h)));
}

TEST(TensorTest, ZerosAndFull)
{
    Tensor z = Tensor::zeros(Shape{2, 3});
    for (int64_t i = 0; i < z.numel(); ++i)
        EXPECT_EQ(z.flatAt(i), 0.0f);
    Tensor f = Tensor::full(Shape{4}, 2.5f);
    for (int64_t i = 0; i < 4; ++i)
        EXPECT_EQ(f.flatAt(i), 2.5f);
}

TEST(TensorTest, RandnDeterministic)
{
    Tensor a = Tensor::randn(Shape{16}, 42);
    Tensor b = Tensor::randn(Shape{16}, 42);
    Tensor c = Tensor::randn(Shape{16}, 43);
    bool same = true, diff = false;
    for (int64_t i = 0; i < 16; ++i) {
        same &= a.flatAt(i) == b.flatAt(i);
        diff |= a.flatAt(i) != c.flatAt(i);
    }
    EXPECT_TRUE(same);
    EXPECT_TRUE(diff);
}

TEST(TensorTest, IndexedAccess)
{
    Tensor t = Tensor::arange(Shape{2, 3});
    EXPECT_EQ(t.at({0, 0}), 0.0f);
    EXPECT_EQ(t.at({0, 2}), 2.0f);
    EXPECT_EQ(t.at({1, 0}), 3.0f);
    t.set({1, 2}, 99.0f);
    EXPECT_EQ(t.at({1, 2}), 99.0f);
}

TEST(TensorTest, ViewSharesStorage)
{
    Tensor t = Tensor::arange(Shape{2, 6});
    Tensor v = t.view(Shape{3, 4});
    v.set({0, 0}, 42.0f);
    EXPECT_EQ(t.at({0, 0}), 42.0f);
    EXPECT_EQ(v.shape(), (Shape{3, 4}));
}

TEST(TensorTest, ViewRequiresMatchingNumel)
{
    Tensor t = Tensor::zeros(Shape{2, 3});
    EXPECT_THROW(t.view(Shape{7}), std::runtime_error);
}

TEST(TensorTest, PermuteIsZeroCopyAndCorrect)
{
    Tensor t = Tensor::arange(Shape{2, 3});
    Tensor p = t.permute({1, 0});
    EXPECT_EQ(p.shape(), (Shape{3, 2}));
    EXPECT_FALSE(p.isContiguous());
    EXPECT_EQ(p.at({2, 1}), t.at({1, 2}));
    // Same storage.
    EXPECT_EQ(p.storage().get(), t.storage().get());
}

TEST(TensorTest, TransposeNegativeDims)
{
    Tensor t = Tensor::arange(Shape{2, 3, 4});
    Tensor tr = t.transpose(-1, -2);
    EXPECT_EQ(tr.shape(), (Shape{2, 4, 3}));
    EXPECT_EQ(tr.at({1, 3, 2}), t.at({1, 2, 3}));
}

TEST(TensorTest, ContiguousMaterializesPermutation)
{
    Tensor t = Tensor::arange(Shape{2, 3});
    Tensor c = t.permute({1, 0}).contiguous();
    EXPECT_TRUE(c.isContiguous());
    EXPECT_NE(c.storage().get(), t.storage().get());
    EXPECT_EQ(c.at({2, 1}), 5.0f);
}

TEST(TensorTest, SliceViewsSubrange)
{
    Tensor t = Tensor::arange(Shape{4, 3});
    Tensor s = t.slice(0, 1, 2);
    EXPECT_EQ(s.shape(), (Shape{2, 3}));
    EXPECT_EQ(s.at({0, 0}), 3.0f);
    EXPECT_EQ(s.at({1, 2}), 8.0f);
    EXPECT_THROW(t.slice(0, 3, 2), std::runtime_error);
}

TEST(TensorTest, SqueezeUnsqueeze)
{
    Tensor t = Tensor::arange(Shape{2, 1, 3});
    Tensor s = t.squeeze(1);
    EXPECT_EQ(s.shape(), (Shape{2, 3}));
    Tensor u = s.unsqueeze(0);
    EXPECT_EQ(u.shape(), (Shape{1, 2, 3}));
    EXPECT_THROW(t.squeeze(0), std::runtime_error);
}

TEST(TensorTest, ExpandBroadcastsStrideZero)
{
    Tensor t = Tensor::arange(Shape{1, 3});
    Tensor e = t.expand(Shape{4, 3});
    EXPECT_EQ(e.shape(), (Shape{4, 3}));
    for (int64_t i = 0; i < 4; ++i)
        EXPECT_EQ(e.at({i, 2}), 2.0f);
    EXPECT_THROW(t.expand(Shape{4, 5}), std::runtime_error);
}

TEST(TensorTest, CloneIsDeep)
{
    Tensor t = Tensor::arange(Shape{4});
    Tensor c = t.clone();
    c.flatSet(0, -1.0f);
    EXPECT_EQ(t.flatAt(0), 0.0f);
}

TEST(TensorTest, DtypeConversionF16)
{
    Tensor t = Tensor::arange(Shape{8});
    Tensor h = t.to(DType::F16);
    EXPECT_EQ(h.bytes(), 16);
    for (int64_t i = 0; i < 8; ++i)
        EXPECT_EQ(h.flatAt(i), static_cast<float>(i));  // small ints exact
}

TEST(TensorTest, DtypeConversionI8SaturatesAndRounds)
{
    Tensor t = Tensor::zeros(Shape{3});
    t.flatSet(0, 300.0f);
    t.flatSet(1, -300.0f);
    t.flatSet(2, 1.6f);
    Tensor q = t.to(DType::I8);
    EXPECT_EQ(q.flatAt(0), 127.0f);
    EXPECT_EQ(q.flatAt(1), -128.0f);
    EXPECT_EQ(q.flatAt(2), 2.0f);
}

TEST(TensorTest, FlatAccessOnNonContiguousView)
{
    // flatAt walks logical row-major order on strided views.
    Tensor t = Tensor::arange(Shape{2, 3});
    Tensor p = t.permute({1, 0});  // [[0,3],[1,4],[2,5]]
    EXPECT_EQ(p.flatAt(0), 0.0f);
    EXPECT_EQ(p.flatAt(1), 3.0f);
    EXPECT_EQ(p.flatAt(2), 1.0f);
    EXPECT_EQ(p.flatAt(5), 5.0f);
}

TEST(TensorTest, ReshapeOfNonContiguousCopies)
{
    Tensor t = Tensor::arange(Shape{2, 3});
    Tensor r = t.permute({1, 0}).reshape(Shape{6});
    EXPECT_EQ(r.flatAt(1), 3.0f);
    EXPECT_TRUE(r.isContiguous());
}

TEST(TensorTest, BytesAccountsForDtype)
{
    EXPECT_EQ(Tensor::zeros(Shape{10}, DType::F32).bytes(), 40);
    EXPECT_EQ(Tensor::zeros(Shape{10}, DType::F16).bytes(), 20);
    EXPECT_EQ(Tensor::zeros(Shape{10}, DType::I8).bytes(), 10);
}

}  // namespace
}  // namespace ngb
