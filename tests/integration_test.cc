#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <tuple>

#include "core/bench.h"
#include "deploy/flow.h"
#include "models/registry.h"
#include "platform/cost_model.h"

namespace ngb {
namespace {

/**
 * Cross-product integration sweep: every registry model scheduled
 * through every deployment flow must yield a plan that covers each
 * non-input node exactly once and prices to a positive finite latency
 * on both platforms.
 */
class ModelFlowSweep
    : public ::testing::TestWithParam<
          std::tuple<std::string, std::string>>
{
};

TEST_P(ModelFlowSweep, PlanIsCompleteAndPriceable)
{
    auto [model, flow_name] = GetParam();
    const auto &info = models::findModel(model);
    ModelConfig mc;
    mc.batch = 1;
    mc.seqLen = info.defaultSeqLen > 0 ? info.defaultSeqLen : 8;
    Graph g = info.build(mc);

    auto flow = makeFlow(flow_name);
    ExecutionPlan plan = flow->plan(g, {true, info.halfPrecision});

    // Exactly-once coverage.
    std::set<int> seen;
    for (const KernelGroup &kg : plan.groups)
        for (int id : kg.nodeIds)
            ASSERT_TRUE(seen.insert(id).second)
                << model << "/" << flow_name << " node " << id;
    for (const Node &n : g.nodes())
        if (!n.inputs.empty())
            ASSERT_TRUE(seen.count(n.id))
                << model << "/" << flow_name << " missing " << n.name;

    for (const char *p : {"A", "B"}) {
        CostModel cm(platformById(p));
        double us = cm.latencyUs(plan);
        EXPECT_GT(us, 0.0) << model << "/" << flow_name;
        EXPECT_TRUE(std::isfinite(us));
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllModelsAllFlows, ModelFlowSweep,
    ::testing::Combine(
        ::testing::Values("vit_b", "vit_l", "vit_h", "swin_t", "swin_s",
                          "swin_b", "faster_rcnn", "mask_rcnn", "detr",
                          "maskformer", "segformer", "gpt2", "gpt2_l",
                          "gpt2_xl", "llama2", "bert", "mixtral",
                          "llama3", "resnet50"),
        ::testing::Values("pytorch", "inductor", "ort", "tensorrt")),
    [](const auto &info) {
        return std::get<0>(info.param) + "_" + std::get<1>(info.param);
    });

TEST(IntegrationTest, CompiledFlowsNeverSlowerThanEager)
{
    // TorchInductor and TensorRT only remove work relative to eager.
    CostModel cm(platformA());
    for (const char *m : {"vit_b", "swin_t", "detr", "segformer",
                          "gpt2", "resnet50"}) {
        const auto &info = models::findModel(m);
        ModelConfig mc;
        mc.seqLen = info.defaultSeqLen > 0 ? info.defaultSeqLen : 8;
        Graph g = info.build(mc);
        double eager =
            cm.latencyUs(makePyTorchFlow()->plan(g, {true, false}));
        EXPECT_LE(cm.latencyUs(makeInductorFlow()->plan(g, {true, false})),
                  eager)
            << m;
        EXPECT_LE(cm.latencyUs(makeTensorRtFlow()->plan(g, {true, false})),
                  eager)
            << m;
    }
}

TEST(IntegrationTest, QuantizedModelRunsThroughEveryFlow)
{
    for (const char *flow : {"pytorch", "inductor", "ort", "tensorrt"}) {
        BenchConfig c;
        c.model = "llama3";
        c.seqLen = 128;
        c.quantize = true;
        c.flow = flow;
        ProfileReport r = Bench::run(c);
        EXPECT_GT(r.totalUs, 0) << flow;
        EXPECT_GT(r.categoryPct(OpCategory::QDQ), 0.0) << flow;
    }
}

TEST(IntegrationTest, TensorRtFusesQdqIntoChains)
{
    // The Q/DQ + elementwise chains introduced by quantization are
    // themselves point-wise fusible — the optimization the paper's
    // conclusion calls for.
    BenchConfig c;
    c.model = "llama3";
    c.seqLen = 512;
    c.quantize = true;
    c.flow = "pytorch";
    ProfileReport eager = Bench::run(c);
    c.flow = "tensorrt";
    ProfileReport trt = Bench::run(c);
    EXPECT_LT(trt.nonGemmUs, eager.nonGemmUs);
    EXPECT_GT(trt.fusionStats.fusedNonGemm, 0);
}

TEST(IntegrationTest, ResNetIsGemmDominatedUnderFusion)
{
    // The extension model demonstrates the paper's Fig. 3 (a) contrast:
    // once CONV+BN+RELU folds, the plain CNN is overwhelmingly
    // GEMM-bound while the transformer keeps a large non-GEMM share.
    // (In eager mode at batch 1 even ResNet is launch-bound — the
    // paper's Amdahl observation applies to CNNs too.)
    BenchConfig c;
    c.flow = "tensorrt";
    c.model = "resnet50";
    double rn = Bench::run(c).gemmPct();
    c.model = "swin_t";
    double swin = Bench::run(c).gemmPct();
    EXPECT_GT(rn, 70.0);
    EXPECT_GT(rn, swin + 10.0);
}

TEST(IntegrationTest, PlatformBIsFasterOnSmallModelsCpu)
{
    // The workstation CPU has higher single-thread perf but lower
    // bandwidth/cores; big CPU-only runs favor the EPYC.
    BenchConfig c;
    c.model = "vit_h";
    c.gpu = false;
    c.platform = "A";
    double a = Bench::run(c).totalUs;
    c.platform = "B";
    double b = Bench::run(c).totalUs;
    EXPECT_GT(b, a);  // ViT-H is compute-bound; EPYC wins
}

TEST(IntegrationTest, SequenceLengthScalesLlmCost)
{
    BenchConfig c;
    c.model = "llama3";
    c.seqLen = 256;
    double t256 = Bench::run(c).totalUs;
    c.seqLen = 2048;
    double t2048 = Bench::run(c).totalUs;
    EXPECT_GT(t2048, 1.5 * t256);
}

TEST(IntegrationTest, BatchSweepMonotone)
{
    for (const char *m : {"vit_b", "segformer"}) {
        double prev = 0;
        for (int64_t b : {1, 2, 4, 8}) {
            BenchConfig c;
            c.model = m;
            c.batch = b;
            double t = Bench::run(c).totalUs;
            EXPECT_GT(t, prev) << m << " b" << b;
            prev = t;
        }
    }
}

}  // namespace
}  // namespace ngb
