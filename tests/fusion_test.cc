#include <gtest/gtest.h>

#include <set>

#include "deploy/fusion.h"
#include "graph/builder.h"

namespace ngb {
namespace {

/** Every non-input node appears in exactly one group. */
void
expectPartition(const Graph &g, const std::vector<KernelGroup> &groups)
{
    std::set<int> seen;
    for (const KernelGroup &kg : groups)
        for (int id : kg.nodeIds) {
            EXPECT_TRUE(seen.insert(id).second) << "node " << id
                                                << " in two groups";
        }
    for (const Node &n : g.nodes()) {
        if (n.inputs.empty())
            continue;
        EXPECT_TRUE(seen.count(n.id)) << "node " << n.id << " unscheduled";
    }
}

Graph
convBnReluGraph()
{
    Graph g;
    GraphBuilder b(g);
    Value x = b.input(Shape{1, 4, 8, 8});
    Value c = b.conv2d(x, 8, 3, 1, 1, 1, false, "conv");
    Value n = b.batchNorm2d(c, true);
    Value r = b.relu(n);
    b.output(r);
    return g;
}

TEST(FusionTest, NoFusionYieldsSingletons)
{
    Graph g = convBnReluGraph();
    FusionConfig cfg;  // everything off
    auto groups = fuseGraph(g, cfg);
    expectPartition(g, groups);
    for (const KernelGroup &kg : groups)
        EXPECT_EQ(kg.nodeIds.size(), 1u);
}

TEST(FusionTest, ConvBnReluFolding)
{
    Graph g = convBnReluGraph();
    FusionConfig cfg;
    cfg.fuseConvBnRelu = true;
    FusionStats st;
    auto groups = fuseGraph(g, cfg, &st);
    expectPartition(g, groups);
    ASSERT_EQ(groups.size(), 1u);
    EXPECT_EQ(groups[0].nodeIds.size(), 3u);
    EXPECT_TRUE(groups[0].fused);
    EXPECT_EQ(groups[0].category, OpCategory::Gemm);
    EXPECT_EQ(st.fusedNonGemm, 2);      // bn + relu
    EXPECT_EQ(st.fusedWithGemm, 2);
    EXPECT_EQ(st.totalNonGemm, 2);
    EXPECT_DOUBLE_EQ(st.fusionRate(), 1.0);
}

TEST(FusionTest, ConvBnNotFoldedWhenBnHasSecondConsumer)
{
    Graph g;
    GraphBuilder b(g);
    Value x = b.input(Shape{1, 4, 8, 8});
    Value c = b.conv2d(x, 8, 3, 1, 1, 1, false, "conv");
    Value n = b.batchNorm2d(c, true);
    Value r = b.relu(n);
    Value other = b.sigmoid(n);  // second consumer of bn
    b.output(r);
    b.output(other);
    FusionConfig cfg;
    cfg.fuseConvBnRelu = true;
    auto groups = fuseGraph(g, cfg);
    expectPartition(g, groups);
    // conv+bn fuse, but relu cannot (bn is multi-use).
    for (const KernelGroup &kg : groups)
        EXPECT_LE(kg.nodeIds.size(), 2u);
}

TEST(FusionTest, PointwiseChainFused)
{
    Graph g;
    GraphBuilder b(g);
    Value x = b.input(Shape{64});
    Value v = b.mulScalar(x, 2.0);
    v = b.addScalar(v, 1.0);
    v = b.tanh(v);
    v = b.mulScalar(v, 0.5);
    b.output(v);

    FusionConfig cfg;
    cfg.fusePointwiseChains = true;
    FusionStats st;
    auto groups = fuseGraph(g, cfg, &st);
    expectPartition(g, groups);
    ASSERT_EQ(groups.size(), 1u);
    EXPECT_EQ(groups[0].nodeIds.size(), 4u);
    EXPECT_EQ(st.fusedNonGemm, 4);
    EXPECT_EQ(st.fusedWithGemm, 0);
}

TEST(FusionTest, MinChainLenGatesFusion)
{
    Graph g;
    GraphBuilder b(g);
    Value x = b.input(Shape{64});
    Value v = b.addScalar(x, 1.0);
    v = b.tanh(v);
    b.output(v);

    FusionConfig cfg;
    cfg.fusePointwiseChains = true;
    cfg.minChainLen = 3;
    auto groups = fuseGraph(g, cfg);
    expectPartition(g, groups);
    EXPECT_EQ(groups.size(), 2u);  // 2-chain stays unfused
    cfg.minChainLen = 2;
    EXPECT_EQ(fuseGraph(g, cfg).size(), 1u);
}

TEST(FusionTest, ChainStopsAtMultiUse)
{
    Graph g;
    GraphBuilder b(g);
    Value x = b.input(Shape{64});
    Value a = b.relu(x);
    Value c = b.tanh(a);
    Value d = b.add(a, c);  // a used twice: chain cannot swallow a
    b.output(d);
    FusionConfig cfg;
    cfg.fusePointwiseChains = true;
    auto groups = fuseGraph(g, cfg);
    expectPartition(g, groups);
    // relu stays alone (two consumers); tanh+add may fuse.
    for (const KernelGroup &kg : groups)
        if (kg.nodeIds.front() == a.node)
            EXPECT_EQ(kg.nodeIds.size(), 1u);
}

TEST(FusionTest, FusedGroupCountsBoundaryBytesOnly)
{
    Graph g;
    GraphBuilder b(g);
    Value x = b.input(Shape{1024});
    Value v = b.relu(x);
    v = b.tanh(v);
    v = b.sigmoid(v);
    b.output(v);

    FusionConfig cfg;
    cfg.fusePointwiseChains = true;
    auto groups = fuseGraph(g, cfg);
    ASSERT_EQ(groups.size(), 1u);
    // One external input + one output: 2 * 4KB, not 6 * 4KB.
    EXPECT_DOUBLE_EQ(groups[0].bytesIn, 4096.0);
    EXPECT_DOUBLE_EQ(groups[0].bytesOut, 4096.0);

    FusionConfig off;
    double unfused_bytes = 0;
    for (const KernelGroup &kg : fuseGraph(g, off))
        unfused_bytes += kg.bytesIn + kg.bytesOut;
    EXPECT_GT(unfused_bytes, groups[0].bytesIn + groups[0].bytesOut);
}

TEST(FusionTest, FusedFlopsAreSumOfMembers)
{
    Graph g;
    GraphBuilder b(g);
    Value x = b.input(Shape{128});
    Value v = b.gelu(x);
    v = b.tanh(v);
    b.output(v);
    double want = 0;
    for (const Node &n : g.nodes())
        want += n.cost.flops;
    FusionConfig cfg;
    cfg.fusePointwiseChains = true;
    auto groups = fuseGraph(g, cfg);
    ASSERT_EQ(groups.size(), 1u);
    EXPECT_DOUBLE_EQ(groups[0].flops, want);
}

TEST(FusionTest, AttributionFollowsHeaviestNonGemmMember)
{
    Graph g;
    GraphBuilder b(g);
    Value x = b.input(Shape{1, 8, 64});
    Value v = b.addScalar(x, 1.0);
    Value n = b.layerNorm(v);  // heavier than the add (8 flops/elem)
    b.output(n);
    FusionConfig cfg;
    cfg.fusePointwiseChains = true;
    auto groups = fuseGraph(g, cfg);
    ASSERT_EQ(groups.size(), 1u);
    EXPECT_EQ(groups[0].category, OpCategory::Normalization);
}

TEST(FusionTest, SingletonGroupReadsKernelAttrs)
{
    Graph g;
    GraphBuilder b(g);
    Value x = b.input(Shape{8});
    Value v = b.gelu(x);
    g.node(v.node).attrs.set("kernels", 8);
    KernelGroup kg = singletonGroup(g, g.node(v.node));
    EXPECT_EQ(kg.kernelCount, 8);
    EXPECT_EQ(kg.bigKernels, 8);
    g.node(v.node).attrs.set("big_kernels", 2);
    kg = singletonGroup(g, g.node(v.node));
    EXPECT_EQ(kg.bigKernels, 2);
}

TEST(FusionTest, ZeroCopySingletonStaysZeroCopy)
{
    Graph g;
    GraphBuilder b(g);
    Value x = b.input(Shape{4, 4});
    Value v = b.transpose(x, 0, 1);
    b.output(v);
    FusionConfig cfg;
    cfg.fusePointwiseChains = true;
    auto groups = fuseGraph(g, cfg);
    ASSERT_EQ(groups.size(), 1u);
    EXPECT_TRUE(groups[0].zeroCopy);
}

}  // namespace
}  // namespace ngb
