#include <gtest/gtest.h>

#include <cmath>

#include "platform/cost_model.h"

namespace ngb {
namespace {

KernelGroup
gemmGroup(double flops, double bytes_param = 0)
{
    KernelGroup g;
    g.category = OpCategory::Gemm;
    g.onGpu = true;
    g.flops = flops;
    g.bytesParam = bytes_param;
    return g;
}

KernelGroup
elemGroup(double bytes)
{
    KernelGroup g;
    g.category = OpCategory::ElementWise;
    g.onGpu = true;
    g.bytesIn = bytes / 2;
    g.bytesOut = bytes / 2;
    g.flops = bytes / 8;
    return g;
}

TEST(DeviceSpecTest, PlatformsMatchTableIII)
{
    PlatformSpec a = platformA();
    EXPECT_EQ(a.id, "A");
    EXPECT_NE(a.cpu.name.find("EPYC"), std::string::npos);
    EXPECT_NE(a.gpu.name.find("A100"), std::string::npos);
    EXPECT_TRUE(a.gpu.isGpu);
    EXPECT_FALSE(a.cpu.isGpu);

    PlatformSpec b = platformB();
    EXPECT_NE(b.cpu.name.find("i9-13900K"), std::string::npos);
    EXPECT_NE(b.gpu.name.find("4090"), std::string::npos);
    EXPECT_THROW(platformById("C"), std::runtime_error);
    EXPECT_EQ(platformById("b").id, "B");
}

TEST(DeviceSpecTest, GemmPeakSelectsPrecision)
{
    DeviceSpec d;
    d.peakGflopsF32 = 10;
    d.peakGflopsTf32 = 100;
    d.peakGflopsF16 = 200;
    d.peakTopsI8 = 1;  // = 1000 GFLOPs
    EXPECT_EQ(d.gemmPeakGflops(false, false), 100);  // TF32 default
    EXPECT_EQ(d.gemmPeakGflops(true, false), 200);
    EXPECT_EQ(d.gemmPeakGflops(false, true), 1000);
}

TEST(CostModelTest, MonotoneInFlops)
{
    CostModel cm(platformA());
    double prev = 0;
    for (double f : {1e6, 1e8, 1e9, 1e11}) {
        double t = cm.price(gemmGroup(f)).totalUs();
        EXPECT_GT(t, prev);
        prev = t;
    }
}

TEST(CostModelTest, MonotoneInBytes)
{
    CostModel cm(platformA());
    double prev = 0;
    for (double by : {1e3, 1e6, 1e8, 1e9}) {
        double t = cm.price(elemGroup(by)).totalUs();
        EXPECT_GE(t, prev);
        prev = t;
    }
}

TEST(CostModelTest, ZeroCopyCostsOnlyHostConstant)
{
    CostModel cm(platformA());
    KernelGroup g;
    g.zeroCopy = true;
    g.kernelCount = 1;
    GroupTiming t = cm.price(g);
    EXPECT_EQ(t.deviceUs, 0.0);
    EXPECT_DOUBLE_EQ(t.hostUs, cm.params().zeroCopyUs);
}

TEST(CostModelTest, LaunchOverheadScalesWithKernelCount)
{
    CostModel cm(platformA());
    KernelGroup g = elemGroup(1e3);
    g.kernelCount = 1;
    g.bigKernels = 1;
    double t1 = cm.price(g).totalUs();
    g.kernelCount = 8;
    g.bigKernels = 8;
    double t8 = cm.price(g).totalUs();
    EXPECT_GT(t8, 6.0 * t1);
}

TEST(CostModelTest, BigKernelsMultiplyTraffic)
{
    CostModel cm(platformA());
    KernelGroup g = elemGroup(1e9);  // bandwidth-bound
    g.kernelCount = 2;
    g.bigKernels = 1;
    double t1 = cm.price(g).deviceUs;
    g.bigKernels = 2;
    double t2 = cm.price(g).deviceUs;
    EXPECT_GT(t2, 1.5 * t1);
}

TEST(CostModelTest, GpuFasterThanCpuForLargeGemm)
{
    CostModel cm(platformA());
    KernelGroup g = gemmGroup(1e12);
    double tg = cm.price(g).totalUs();
    g.onGpu = false;
    double tc = cm.price(g).totalUs();
    EXPECT_LT(tg, tc / 5.0);
}

TEST(CostModelTest, SmallGemmsRunFarFromPeak)
{
    // The utilization ramp: 1000 small GEMMs are much slower than one
    // GEMM with the same total flops.
    CostModel cm(platformA());
    double big = cm.price(gemmGroup(1e10)).deviceUs;
    double small_total = 1000.0 * cm.price(gemmGroup(1e7)).deviceUs;
    EXPECT_GT(small_total, 10.0 * big);
}

TEST(CostModelTest, F16HalvesGemmTimeAtScale)
{
    CostModel cm(platformA());
    KernelGroup g = gemmGroup(1e12);
    double f32 = cm.price(g).deviceUs;
    g.f16 = true;
    double f16 = cm.price(g).deviceUs;
    EXPECT_LT(f16, f32);
}

TEST(CostModelTest, Int8FasterThanF16Gemm)
{
    CostModel cm(platformA());
    KernelGroup g = gemmGroup(1e12);
    g.f16 = true;
    double f16 = cm.price(g).deviceUs;
    g.i8 = true;
    double i8 = cm.price(g).deviceUs;
    EXPECT_LT(i8, f16);
}

TEST(CostModelTest, TransferBytesAddPcieTime)
{
    CostModel cm(platformA());
    KernelGroup g = elemGroup(1e4);
    g.onGpu = false;
    double base = cm.price(g).totalUs();
    g.transferBytes = 24e6;  // 1 ms at 24 GB/s
    double with = cm.price(g).totalUs();
    EXPECT_NEAR(with - base, 1000.0 + 2 * cm.platform().pcieLatencyUs,
                50.0);
}

TEST(CostModelTest, HostSyncsAddDynamicCost)
{
    CostModel cm(platformA());
    KernelGroup g = elemGroup(1e3);
    double base = cm.price(g).hostUs;
    g.hostSyncs = 2;
    EXPECT_NEAR(cm.price(g).hostUs - base,
                2.0 * cm.params().dynamicSyncUs, 1e-9);
}

TEST(CostModelTest, NmsPaysSyncOnGpuOnly)
{
    CostModel cm(platformA());
    KernelGroup g;
    g.category = OpCategory::RoiSelection;
    g.onGpu = true;
    g.flops = 1e5;
    g.bytesIn = 1e4;
    double gpu_host = cm.price(g).hostUs;
    g.onGpu = false;
    double cpu_host = cm.price(g).hostUs;
    EXPECT_GT(gpu_host, cpu_host);
}

TEST(CostModelTest, DispatchOverrideRespected)
{
    CostModel cm(platformA());
    KernelGroup g = elemGroup(1e3);
    g.dispatchUsOverride = 1.0;
    EXPECT_DOUBLE_EQ(cm.price(g).hostUs, 1.0);
}

TEST(CostModelTest, FusedGroupsDispatchOnce)
{
    CostModel cm(platformA());
    KernelGroup g = elemGroup(1e3);
    g.fused = true;
    g.kernelCount = 1;
    EXPECT_DOUBLE_EQ(cm.price(g).hostUs, cm.params().fusedDispatchUs);
}

TEST(EnergyTest, GpuEnergyZeroWhenGpuDisabled)
{
    ExecutionPlan plan;
    plan.gpuEnabled = false;
    KernelGroup g = elemGroup(1e6);
    g.onGpu = false;
    plan.groups.push_back(g);
    CostModel cm(platformA());
    auto timings = cm.priceAll(plan);
    EnergyBreakdown e = energyOf(plan, timings, platformA());
    EXPECT_EQ(e.gpuJoules, 0.0);
    EXPECT_GT(e.cpuJoules, 0.0);
}

TEST(EnergyTest, EnergyGrowsWithWork)
{
    CostModel cm(platformA());
    ExecutionPlan small, large;
    small.gpuEnabled = large.gpuEnabled = true;
    small.groups.push_back(gemmGroup(1e9));
    large.groups.push_back(gemmGroup(1e12));
    auto es = energyOf(small, cm.priceAll(small), platformA());
    auto el = energyOf(large, cm.priceAll(large), platformA());
    EXPECT_GT(el.totalJoules(), es.totalJoules());
}

TEST(CostModelTest, RateScaleSpeedsExecution)
{
    CostModel cm(platformA());
    KernelGroup g = gemmGroup(1e11);
    double base = cm.price(g).deviceUs;
    g.rateScale = 2.0;
    EXPECT_LT(cm.price(g).deviceUs, base);
}

class LatencySweep : public ::testing::TestWithParam<double>
{
};

TEST_P(LatencySweep, LatencyPositiveAndFinite)
{
    CostModel cm(platformB());
    KernelGroup g = gemmGroup(GetParam());
    double t = cm.price(g).totalUs();
    EXPECT_GT(t, 0.0);
    EXPECT_TRUE(std::isfinite(t));
}

INSTANTIATE_TEST_SUITE_P(Flops, LatencySweep,
                         ::testing::Values(1.0, 1e3, 1e6, 1e9, 1e12,
                                           1e14));

}  // namespace
}  // namespace ngb
