/**
 * @file
 * The kernel-backend API: registry completeness, fallback chains,
 * explicit kernel installation, backend-keyed engine caching, and the
 * cross-backend differential suite (every registry model, reference vs
 * optimized, serial and parallel).
 */
#include <gtest/gtest.h>

#include <cstring>
#include <stdexcept>

#include "graph/builder.h"
#include "graph/executor.h"
#include "models/registry.h"
#include "ops/backend.h"
#include "ops/kernels.h"
#include "ops/optimized_kernels.h"
#include "runtime/batch_driver.h"
#include "runtime/parallel_executor.h"
#include "runtime/request_util.h"
#include "runtime/thread_pool.h"
#include "serve/engine.h"

namespace ngb {
namespace {

namespace kn = kernels;
namespace ko = kernels::opt;

::testing::AssertionResult
tensorsBitIdentical(const Tensor &a, const Tensor &b)
{
    std::string diff = bitDifference({a}, {b});
    if (diff.empty())
        return ::testing::AssertionSuccess();
    return ::testing::AssertionFailure() << diff;
}

::testing::AssertionResult
tensorsClose(const Tensor &a, const Tensor &b, float rtol = 1e-3f,
             float atol = 1e-5f)
{
    std::string diff = closeDifference({a}, {b}, rtol, atol);
    if (diff.empty())
        return ::testing::AssertionSuccess();
    return ::testing::AssertionFailure() << diff;
}

// ---- registry completeness guard -----------------------------------------

TEST(BackendRegistryTest, ReferenceCoversEveryOpIncludingFused)
{
    // Fused is REQUIRED since the executable-fusion rewrite: graphs
    // out of applyFusion dispatch Fused nodes like any other operator
    // (the reference backend interprets the folded chain; a chain
    // containing an op the interpreter cannot fold throws its own
    // descriptive error, covered in fusion_exec_test).
    const Backend &ref = referenceBackend();
    for (OpKind k : allOpKinds())
        EXPECT_TRUE(ref.handles(k))
            << "reference backend is missing a kernel for '"
            << opKindName(k) << "'";
    EXPECT_EQ(ref.numKernels(), allOpKinds().size());
}

TEST(BackendRegistryTest, OptimizedRegistersFusedKernel)
{
    EXPECT_TRUE(optimizedBackend().handles(OpKind::Fused));
}

TEST(BackendRegistryTest, UnknownOpLookupThrowsDescriptiveError)
{
    Backend bare("bare", nullptr);
    bare.registerKernel(OpKind::ReLU, [](const KernelContext &c) {
        return singleOutput(kn::relu(c.in(0)));
    });
    try {
        bare.kernelFor(OpKind::Fused);
        FAIL() << "expected unknown-op lookup to throw";
    } catch (const std::runtime_error &e) {
        std::string msg = e.what();
        EXPECT_NE(msg.find("fused"), std::string::npos) << msg;
        EXPECT_NE(msg.find("bare"), std::string::npos) << msg;
    }
}

TEST(BackendRegistryTest, UnknownBackendNameThrows)
{
    try {
        findBackend("bogus");
        FAIL() << "expected unknown-backend lookup to throw";
    } catch (const std::runtime_error &e) {
        std::string msg = e.what();
        EXPECT_NE(msg.find("bogus"), std::string::npos) << msg;
        EXPECT_NE(msg.find("reference"), std::string::npos) << msg;
        EXPECT_NE(msg.find("optimized"), std::string::npos) << msg;
    }
}

TEST(BackendRegistryTest, BuiltinsResolveByName)
{
    EXPECT_EQ(&findBackend("reference"), &referenceBackend());
    EXPECT_EQ(&findBackend("optimized"), &optimizedBackend());
    EXPECT_EQ(optimizedBackend().fallback(), &referenceBackend());
    EXPECT_EQ(referenceBackend().fallback(), nullptr);
    // The optimized backend is a sparse overlay, not a full copy.
    EXPECT_GT(optimizedBackend().numKernels(), 0u);
    EXPECT_LT(optimizedBackend().numKernels(),
              referenceBackend().numKernels());
}

TEST(BackendRegistryTest, FallbackChainResolvesUnoverriddenOps)
{
    // Conv2d is not overridden by the optimized backend: lookup must
    // resolve through the fallback chain instead of throwing.
    EXPECT_FALSE(optimizedBackend().handles(OpKind::Conv2d));
    EXPECT_NO_THROW(optimizedBackend().kernelFor(OpKind::Conv2d));
    // An empty backend with no fallback reports the full chain.
    Backend lone("lone");
    EXPECT_THROW(lone.kernelFor(OpKind::ReLU), std::runtime_error);
}

// ---- explicit installation + fallback through an executor ----------------

TEST(BackendOverrideTest, InstalledKernelOverridesAndRestFallsBack)
{
    Graph g;
    GraphBuilder b(g);
    Value x = b.input(Shape{2, 8});
    Value h = b.linear(x, 8, true, "fc");
    b.output(b.relu(h));

    // A backend that stubs ReLU to zeros but inherits everything else.
    Backend stub("stub", &referenceBackend());
    stub.registerKernel(OpKind::ReLU, [](const KernelContext &c) {
        std::vector<Tensor> out;
        out.push_back(Tensor::zeros(c.node.outShapes[0]));
        return out;
    });
    EXPECT_TRUE(stub.handles(OpKind::ReLU));
    EXPECT_FALSE(stub.handles(OpKind::Linear));

    std::vector<Tensor> inputs = makeRequestInputs(g, 7);
    Executor ex(g, stub);
    std::vector<Tensor> outs = ex.run(inputs);
    ASSERT_EQ(outs.size(), 1u);
    for (int64_t i = 0; i < outs[0].numel(); ++i)
        EXPECT_EQ(outs[0].flatAt(i), 0.0f);

    // The same graph under the reference backend is not all zeros
    // (the stub really did take effect, Linear really did run).
    Executor ref(g, referenceBackend());
    std::vector<Tensor> refOuts = ref.run(inputs);
    bool anyNonZero = false;
    for (int64_t i = 0; i < refOuts[0].numel(); ++i)
        anyNonZero = anyNonZero || refOuts[0].flatAt(i) != 0.0f;
    EXPECT_TRUE(anyNonZero);
}

// ---- optimized kernels: order-preserving ops are bit-identical -----------

TEST(OptimizedKernelTest, OrderPreservingKernelsBitIdentical)
{
    Tensor x = Tensor::randn(Shape{64, 33}, 21);
    EXPECT_TRUE(tensorsBitIdentical(kn::relu(x), ko::relu(x)));
    EXPECT_TRUE(tensorsBitIdentical(kn::gelu(x), ko::gelu(x)));
    EXPECT_TRUE(tensorsBitIdentical(kn::silu(x), ko::silu(x)));
    EXPECT_TRUE(tensorsBitIdentical(kn::sigmoid(x), ko::sigmoid(x)));
    EXPECT_TRUE(tensorsBitIdentical(kn::tanhOp(x), ko::tanhOp(x)));
    EXPECT_TRUE(tensorsBitIdentical(kn::expOp(x), ko::expOp(x)));
    EXPECT_TRUE(
        tensorsBitIdentical(kn::addScalar(x, 0.5f), ko::addScalar(x, 0.5f)));
    EXPECT_TRUE(
        tensorsBitIdentical(kn::mulScalar(x, 1.5f), ko::mulScalar(x, 1.5f)));

    Tensor y = Tensor::randn(Shape{64, 33}, 22);
    EXPECT_TRUE(tensorsBitIdentical(kn::add(x, y), ko::add(x, y)));
    EXPECT_TRUE(tensorsBitIdentical(kn::sub(x, y), ko::sub(x, y)));
    EXPECT_TRUE(tensorsBitIdentical(kn::mul(x, y), ko::mul(x, y)));
    EXPECT_TRUE(tensorsBitIdentical(kn::div(x, y), ko::div(x, y)));

    // Last-dim softmax takes the raw-pointer fast path; same float
    // expressions in the same order.
    Tensor logits = Tensor::randn(Shape{5, 13, 17}, 23);
    EXPECT_TRUE(
        tensorsBitIdentical(kn::softmax(logits, -1), ko::softmax(logits, -1)));

    // BatchNorm hoists the per-channel affine but evaluates the same
    // expressions per element.
    Tensor img = Tensor::randn(Shape{2, 6, 9, 9}, 24);
    Tensor gm = Tensor::randn(Shape{6}, 25, 0.1f);
    Tensor bt = Tensor::randn(Shape{6}, 26, 0.1f);
    Tensor mn = Tensor::randn(Shape{6}, 27, 0.1f);
    Tensor vr = Tensor::full(Shape{6}, 0.9f);
    EXPECT_TRUE(tensorsBitIdentical(
        kn::batchNorm2d(img, gm, bt, mn, vr, 1e-5f),
        ko::batchNorm2d(img, gm, bt, mn, vr, 1e-5f)));
}

TEST(OptimizedKernelTest, NonFastInputsFallBackToReferenceSemantics)
{
    // F16 input: the fast path requires F32, so the optimized entry
    // must produce exactly what the reference does.
    Tensor h = Tensor::randn(Shape{40}, 31).to(DType::F16);
    EXPECT_TRUE(tensorsBitIdentical(kn::relu(h), ko::relu(h)));

    // Non-contiguous view input.
    Tensor x = Tensor::randn(Shape{12, 10}, 32).transpose(0, 1);
    EXPECT_TRUE(tensorsBitIdentical(kn::gelu(x), ko::gelu(x)));

    // Broadcasting add (shapes differ): reference broadcast path.
    Tensor a = Tensor::randn(Shape{8, 5}, 33);
    Tensor row = Tensor::randn(Shape{5}, 34);
    EXPECT_TRUE(tensorsBitIdentical(kn::add(a, row), ko::add(a, row)));

    // Softmax over a non-terminal dim: reference permuting path.
    Tensor t = Tensor::randn(Shape{4, 6, 8}, 35);
    EXPECT_TRUE(tensorsBitIdentical(kn::softmax(t, 1), ko::softmax(t, 1)));
}

TEST(OptimizedKernelTest, GemmMatchesReferenceAcrossEdgeShapes)
{
    // Shapes straddling the 4x16 register tile: exact multiples, tails
    // in M only, N only, both, and degenerate single-element GEMMs.
    const int64_t shapes[][3] = {
        {1, 1, 1},   {3, 5, 7},    {4, 16, 16}, {5, 17, 33},
        {8, 32, 16}, {127, 63, 65}, {16, 1, 16}, {2, 300, 2},
    };
    for (const auto &s : shapes) {
        int64_t m = s[0], k = s[1], n = s[2];
        Tensor a = Tensor::randn(Shape{m, k}, 41 + m);
        Tensor b = Tensor::randn(Shape{k, n}, 43 + n);
        EXPECT_TRUE(tensorsClose(ko::matmul(a, b), kn::matmul(a, b), 1e-4f))
            << "matmul " << m << "x" << k << "x" << n;

        Tensor x = Tensor::randn(Shape{2, m, k}, 47 + m);
        Tensor w = Tensor::randn(Shape{n, k}, 53 + n);
        Tensor bias = Tensor::randn(Shape{n}, 59);
        EXPECT_TRUE(tensorsClose(ko::linear(x, w, bias),
                                 kn::linear(x, w, bias), 1e-4f))
            << "linear " << m << "x" << k << "x" << n;
        EXPECT_TRUE(tensorsClose(ko::linear(x, w, Tensor()),
                                 kn::linear(x, w, Tensor()), 1e-4f))
            << "linear(no bias) " << m << "x" << k << "x" << n;

        Tensor ba = Tensor::randn(Shape{3, m, k}, 61 + m);
        Tensor bb = Tensor::randn(Shape{3, k, n}, 67 + n);
        EXPECT_TRUE(tensorsClose(ko::bmm(ba, bb), kn::bmm(ba, bb), 1e-4f))
            << "bmm " << m << "x" << k << "x" << n;
    }

    // Non-contiguous A operand (transposed view), as attention builds.
    Tensor a = Tensor::randn(Shape{24, 12}, 71).transpose(0, 1);
    Tensor b = Tensor::randn(Shape{24, 20}, 72);
    EXPECT_TRUE(tensorsClose(ko::matmul(a, b), kn::matmul(a, b), 1e-4f));
}

TEST(OptimizedKernelTest, LayerNormSinglePassWithinTolerance)
{
    for (int64_t d : {1, 7, 64, 768}) {
        Tensor x = Tensor::randn(Shape{19, d}, 80 + d);
        Tensor g = Tensor::randn(Shape{d}, 81, 0.1f);
        Tensor b = Tensor::randn(Shape{d}, 82, 0.1f);
        EXPECT_TRUE(tensorsClose(ko::layerNorm(x, g, b, 1e-5f),
                                 kn::layerNorm(x, g, b, 1e-5f), 1e-3f,
                                 1e-4f))
            << "layer_norm d=" << d;
    }

    // Large common offset, tiny spread: the naive E[x^2]-mean^2
    // shortcut cancels catastrophically here (variance ~1e-2 against
    // squared moments ~1e6, clamping to 0 and inflating every z-score
    // ~30x); Welford must stay with the centered two-pass reference.
    // Both methods carry O(1e-2) inherent f32 rounding in this regime
    // (the deviations themselves only have ~3 significant digits at
    // offset 1000), so the assertion is an absolute z-score bound
    // that catches the blowup, not bit-level agreement.
    Tensor shifted =
        kn::addScalar(Tensor::randn(Shape{8, 256}, 83, 0.1f), 1000.0f);
    Tensor g1 = Tensor::full(Shape{256}, 1.0f);
    Tensor b0 = Tensor::zeros(Shape{256});
    EXPECT_TRUE(tensorsClose(ko::layerNorm(shifted, g1, b0, 1e-5f),
                             kn::layerNorm(shifted, g1, b0, 1e-5f), 1e-2f,
                             5e-2f));
}

// ---- cross-backend differential suite over the registry ------------------

class BackendDifferentialTest
    : public ::testing::TestWithParam<models::ModelInfo>
{
};

TEST_P(BackendDifferentialTest, OptimizedMatchesReferenceSerialAndParallel)
{
    const models::ModelInfo &info = GetParam();
    Graph g = info.build(ModelConfig{1, 8, false, 0, 8});
    std::vector<Tensor> inputs = makeRequestInputs(g, 99);

    Executor ref(g, referenceBackend());
    std::vector<Tensor> want = ref.run(inputs);

    Executor opt(g, optimizedBackend());
    std::vector<Tensor> got = opt.run(inputs);
    EXPECT_EQ(closeDifference(got, want), "") << info.name;

    // Same backend, parallel wavefront execution: bit-identical to
    // the serial walk — threading must never change a bit.
    ThreadPool pool(4);
    ParallelExecutor pex(g, pool, optimizedBackend());
    EXPECT_EQ(bitDifference(pex.run(inputs), got), "") << info.name;
}

INSTANTIATE_TEST_SUITE_P(
    AllRegistryModels, BackendDifferentialTest,
    ::testing::ValuesIn(models::modelRegistry()),
    [](const ::testing::TestParamInfo<models::ModelInfo> &i) {
        return i.param.name;
    });

TEST(BackendDifferentialTest2, BatchDriverHonorsBackend)
{
    Graph g = models::findModel("vit_b").build(ModelConfig{1, 8, false,
                                                           0, 16});
    ThreadPool pool(2);
    std::vector<std::vector<Tensor>> reqs = {makeRequestInputs(g, 1),
                                             makeRequestInputs(g, 2)};

    BatchDriver opt(g, pool, optimizedBackend());
    auto outs = opt.run(reqs);
    EXPECT_EQ(opt.profile().backend, "optimized");

    Executor serialOpt(g, optimizedBackend());
    for (size_t r = 0; r < reqs.size(); ++r)
        EXPECT_EQ(bitDifference(outs[r], serialOpt.run(reqs[r])), "");

    Executor serialRef(g, referenceBackend());
    for (size_t r = 0; r < reqs.size(); ++r)
        EXPECT_EQ(closeDifference(outs[r], serialRef.run(reqs[r])), "");
}

// ---- engine cache keys on backend ----------------------------------------

TEST(EngineCacheBackendTest, TenantsPinningBackendsGetDistinctEngines)
{
    ThreadPool pool(2);
    serve::EngineConfig cfg;
    cfg.scale = 16;
    cfg.seqLen = 8;
    serve::EngineCache cache(pool, cfg);

    serve::Engine &ref1 = cache.get("vit_b", "reference");
    serve::Engine &ref2 = cache.get("vit_b", "reference");
    EXPECT_EQ(&ref1, &ref2);
    EXPECT_EQ(ref1.backend().name(), "reference");

    serve::Engine &opt = cache.get("vit_b", "optimized");
    EXPECT_NE(&ref1, &opt);
    EXPECT_EQ(opt.backend().name(), "optimized");

    serve::EngineCache::Stats stats = cache.stats();
    EXPECT_EQ(stats.hits, 1);
    EXPECT_EQ(stats.misses, 2);
    EXPECT_EQ(stats.engines, 2u);

    // The two engines really dispatch different kernel sets, and both
    // reproduce their own serial executor bit-for-bit.
    std::vector<std::vector<Tensor>> req = {
        makeRequestInputs(ref1.graph(), 5)};
    auto a = ref1.run(req);
    auto b = opt.run(req);
    Executor sref(ref1.graph(), referenceBackend());
    Executor sopt(opt.graph(), optimizedBackend());
    EXPECT_EQ(bitDifference(a[0], sref.run(req[0])), "");
    EXPECT_EQ(bitDifference(b[0], sopt.run(req[0])), "");
    EXPECT_EQ(closeDifference(b[0], a[0]), "");
}

TEST(EngineCacheBackendTest, ConfigBackendIsDefaultForTenants)
{
    ThreadPool pool(2);
    serve::EngineConfig cfg;
    cfg.scale = 16;
    cfg.backend = "optimized";
    serve::EngineCache cache(pool, cfg);
    serve::Engine &e = cache.get("gpt2");
    EXPECT_EQ(e.backend().name(), "optimized");
    // An explicit pin still wins over the config default.
    serve::Engine &r = cache.get("gpt2", "reference");
    EXPECT_EQ(r.backend().name(), "reference");
    EXPECT_NE(&e, &r);
}

}  // namespace
}  // namespace ngb
