#include <gtest/gtest.h>

#include "graph/builder.h"
#include "graph/op_cost.h"

namespace ngb {
namespace {

TEST(OpCostTest, LinearFlopsAre2MKN)
{
    Graph g;
    GraphBuilder b(g);
    Value x = b.input(Shape{4, 8, 16});
    Value y = b.linear(x, 32);
    const OpCost &c = g.node(y.node).cost;
    EXPECT_DOUBLE_EQ(c.flops, 2.0 * (4 * 8) * 16 * 32);
    // bias + weight bytes.
    EXPECT_DOUBLE_EQ(c.bytesParam, (32.0 * 16 + 32) * 4);
    EXPECT_DOUBLE_EQ(c.bytesIn, 4.0 * 8 * 16 * 4);
    EXPECT_DOUBLE_EQ(c.bytesOut, 4.0 * 8 * 32 * 4);
}

TEST(OpCostTest, Conv2dFlopsFollowOutputPatches)
{
    Graph g;
    GraphBuilder b(g);
    Value x = b.input(Shape{1, 3, 8, 8});
    Value y = b.conv2d(x, 16, 3, 1, 1);
    const OpCost &c = g.node(y.node).cost;
    // out numel = 16*8*8 = 1024; per-output MACs = 3*3*3 = 27.
    EXPECT_DOUBLE_EQ(c.flops, 2.0 * 1024 * 27);
}

TEST(OpCostTest, BmmFlops)
{
    Graph g;
    GraphBuilder b(g);
    Value a = b.input(Shape{2, 3, 4});
    Value c = b.input(Shape{2, 4, 5});
    Value y = b.bmm(a, c);
    EXPECT_DOUBLE_EQ(g.node(y.node).cost.flops, 2.0 * 2 * 3 * 4 * 5);
}

TEST(OpCostTest, ZeroCopyLayoutOpsHaveNoTraffic)
{
    Graph g;
    GraphBuilder b(g);
    Value x = b.input(Shape{8, 8});
    for (Value v : {b.view(x, Shape{64}), b.permute(x, {1, 0}),
                    b.transpose(x, 0, 1), b.slice(x, 0, 0, 4),
                    b.unsqueeze(x, 0)}) {
        const OpCost &c = g.node(v.node).cost;
        EXPECT_TRUE(c.zeroCopy) << g.node(v.node).name;
        EXPECT_EQ(c.flops, 0.0);
        EXPECT_EQ(c.bytesIn, 0.0);
        EXPECT_EQ(c.bytesOut, 0.0);
    }
}

TEST(OpCostTest, CopyingLayoutOpsMoveBytes)
{
    Graph g;
    GraphBuilder b(g);
    Value x = b.input(Shape{8, 8});
    Value c = b.contiguous(x);
    const OpCost &cc = g.node(c.node).cost;
    EXPECT_FALSE(cc.zeroCopy);
    EXPECT_EQ(cc.flops, 0.0);
    EXPECT_EQ(cc.bytesIn, 64.0 * 4);
    EXPECT_EQ(cc.bytesOut, 64.0 * 4);

    Value r = b.roll(x, 2, 0);
    EXPECT_FALSE(g.node(r.node).cost.zeroCopy);
    EXPECT_GT(g.node(r.node).cost.bytesOut, 0.0);
}

TEST(OpCostTest, GeluCostsMoreThanRelu)
{
    Graph g;
    GraphBuilder b(g);
    Value x = b.input(Shape{128});
    Value r = b.relu(x);
    Value ge = b.gelu(x);
    EXPECT_GT(g.node(ge.node).cost.flops, g.node(r.node).cost.flops);
}

TEST(OpCostTest, NormalizationFlopsScaleWithElements)
{
    Graph g;
    GraphBuilder b(g);
    Value small = b.input(Shape{1, 4, 16});
    Value big = b.input(Shape{1, 64, 16});
    Value ns = b.layerNorm(small);
    Value nb = b.layerNorm(big);
    EXPECT_DOUBLE_EQ(g.node(nb.node).cost.flops,
                     16.0 * g.node(ns.node).cost.flops);
}

TEST(OpCostTest, NmsCostQuadraticInCandidates)
{
    Graph g;
    GraphBuilder b(g);
    Value b1 = b.input(Shape{100, 4});
    Value s1 = b.input(Shape{100});
    Value b2 = b.input(Shape{1000, 4});
    Value s2 = b.input(Shape{1000});
    Value n1 = b.nms(b1, s1, 0.5, 0.0, 100);
    Value n2 = b.nms(b2, s2, 0.5, 0.0, 1000);
    // 10x boxes with keep scaling along => ~100x IoU work.
    EXPECT_GT(g.node(n2.node).cost.flops,
              50.0 * g.node(n1.node).cost.flops);
}

TEST(OpCostTest, EmbeddingIsPureDataMovement)
{
    Graph g;
    GraphBuilder b(g);
    Value ids = b.tokenInput(Shape{1, 16});
    Value e = b.embedding(ids, 100, 32);
    const OpCost &c = g.node(e.node).cost;
    EXPECT_EQ(c.flops, 0.0);
    EXPECT_GT(c.bytesOut, 0.0);
    EXPECT_GT(c.bytesParam, 0.0);
}

TEST(OpCostTest, QuantizeDequantizeBytesReflectDtypes)
{
    Graph g;
    GraphBuilder b(g);
    Value x = b.input(Shape{64});
    Value q = b.quantize(x);
    // f32 in (256B), i8 out (64B).
    EXPECT_DOUBLE_EQ(g.node(q.node).cost.bytesIn, 256.0);
    EXPECT_DOUBLE_EQ(g.node(q.node).cost.bytesOut, 64.0);
    Value d = b.dequantize(q);
    EXPECT_DOUBLE_EQ(g.node(d.node).cost.bytesIn, 64.0);
    EXPECT_DOUBLE_EQ(g.node(d.node).cost.bytesOut, 256.0);
}

TEST(OpCostTest, Int8LinearSameFlopsAsFloat)
{
    Graph g;
    GraphBuilder b(g);
    Value x = b.input(Shape{1, 64});
    Value f = b.linear(x, 64, false);
    Value q8 = b.int8Linear(x, 64, false);
    EXPECT_DOUBLE_EQ(g.node(f.node).cost.flops,
                     g.node(q8.node).cost.flops);
    // int8 weights are 4x smaller.
    EXPECT_DOUBLE_EQ(g.node(f.node).cost.bytesParam,
                     4.0 * g.node(q8.node).cost.bytesParam);
}

class ElemwiseCostSweep : public ::testing::TestWithParam<int64_t>
{
};

TEST_P(ElemwiseCostSweep, BytesLinearInSize)
{
    int64_t n = GetParam();
    Graph g;
    GraphBuilder b(g);
    Value x = b.input(Shape{n});
    Value y = b.add(x, x);
    EXPECT_DOUBLE_EQ(g.node(y.node).cost.bytesOut,
                     static_cast<double>(n) * 4);
    EXPECT_DOUBLE_EQ(g.node(y.node).cost.flops, static_cast<double>(n));
}

INSTANTIATE_TEST_SUITE_P(Sizes, ElemwiseCostSweep,
                         ::testing::Values(1, 16, 1024, 1 << 20));

}  // namespace
}  // namespace ngb
