#include <gtest/gtest.h>

#include "graph/builder.h"
#include "graph/graph.h"

namespace ngb {
namespace {

TEST(GraphBuilderTest, LinearShapeInference)
{
    Graph g;
    GraphBuilder b(g);
    Value x = b.input(Shape{2, 5, 16});
    Value y = b.linear(x, 32);
    EXPECT_EQ(g.shapeOf(y), (Shape{2, 5, 32}));
    const Node &n = g.node(y.node);
    EXPECT_EQ(n.kind, OpKind::Linear);
    ASSERT_EQ(n.paramShapes.size(), 2u);  // weight + bias
    EXPECT_EQ(n.paramShapes[0], (Shape{32, 16}));
}

TEST(GraphBuilderTest, Conv2dShapeInference)
{
    Graph g;
    GraphBuilder b(g);
    Value x = b.input(Shape{1, 3, 32, 32});
    Value y = b.conv2d(x, 8, 3, 2, 1);
    EXPECT_EQ(g.shapeOf(y), (Shape{1, 8, 16, 16}));
}

TEST(GraphBuilderTest, BmmShapeAndValidation)
{
    Graph g;
    GraphBuilder b(g);
    Value a = b.input(Shape{4, 5, 6});
    Value c = b.input(Shape{4, 6, 7});
    Value y = b.bmm(a, c);
    EXPECT_EQ(g.shapeOf(y), (Shape{4, 5, 7}));
    Value bad = b.input(Shape{3, 6, 7});
    EXPECT_THROW(b.bmm(a, bad), std::runtime_error);
}

TEST(GraphBuilderTest, BroadcastBinary)
{
    Graph g;
    GraphBuilder b(g);
    Value a = b.input(Shape{2, 1, 8});
    Value c = b.input(Shape{1, 4, 8});
    Value y = b.add(a, c);
    EXPECT_EQ(g.shapeOf(y), (Shape{2, 4, 8}));
}

TEST(GraphBuilderTest, SplitMultiOutput)
{
    Graph g;
    GraphBuilder b(g);
    Value x = b.input(Shape{2, 4, 12});
    auto parts = b.split(x, 4, -1);
    ASSERT_EQ(parts.size(), 3u);
    for (const Value &p : parts)
        EXPECT_EQ(g.shapeOf(p), (Shape{2, 4, 4}));
    EXPECT_EQ(parts[0].node, parts[1].node);
    EXPECT_NE(parts[0].index, parts[1].index);
}

TEST(GraphBuilderTest, PermuteTransposeShapes)
{
    Graph g;
    GraphBuilder b(g);
    Value x = b.input(Shape{2, 3, 4});
    EXPECT_EQ(g.shapeOf(b.permute(x, {2, 0, 1})), (Shape{4, 2, 3}));
    EXPECT_EQ(g.shapeOf(b.transpose(x, -1, -2)), (Shape{2, 4, 3}));
}

TEST(GraphBuilderTest, ConcatSliceShapes)
{
    Graph g;
    GraphBuilder b(g);
    Value a = b.input(Shape{2, 3});
    Value c = b.input(Shape{2, 5});
    Value y = b.concat({a, c}, 1);
    EXPECT_EQ(g.shapeOf(y), (Shape{2, 8}));
    EXPECT_EQ(g.shapeOf(b.slice(y, 1, 2, 4)), (Shape{2, 4}));
}

TEST(GraphBuilderTest, ReshapeValidation)
{
    Graph g;
    GraphBuilder b(g);
    Value x = b.input(Shape{2, 6});
    EXPECT_EQ(g.shapeOf(b.reshape(x, Shape{3, 4})), (Shape{3, 4}));
    EXPECT_THROW(b.reshape(x, Shape{5}), std::runtime_error);
}

TEST(GraphBuilderTest, NmsStaticShape)
{
    Graph g;
    GraphBuilder b(g);
    Value boxes = b.input(Shape{100, 4});
    Value scores = b.input(Shape{100});
    Value keep = b.nms(boxes, scores, 0.5, 0.05, 20);
    EXPECT_EQ(g.shapeOf(keep), (Shape{20}));
    EXPECT_EQ(g.dtypeOf(keep), DType::I32);
}

TEST(GraphBuilderTest, EmbeddingAddsVocabParam)
{
    Graph g;
    GraphBuilder b(g);
    Value ids = b.tokenInput(Shape{1, 8});
    Value e = b.embedding(ids, 1000, 64);
    EXPECT_EQ(g.shapeOf(e), (Shape{1, 8, 64}));
    EXPECT_EQ(g.node(e.node).paramShapes[0], (Shape{1000, 64}));
}

TEST(GraphBuilderTest, WeightNodeHasNoInputsButAParam)
{
    Graph g;
    GraphBuilder b(g);
    Value w = b.weight(Shape{1, 4, 16}, "pos");
    const Node &n = g.node(w.node);
    EXPECT_TRUE(n.inputs.empty());
    EXPECT_EQ(n.paramShapes[0], (Shape{1, 4, 16}));
    // Weights are not graph inputs.
    EXPECT_TRUE(g.graphInputs().empty());
}

TEST(GraphTest, StatsCountCategories)
{
    Graph g;
    GraphBuilder b(g);
    Value x = b.input(Shape{1, 4, 16});
    Value h = b.linear(x, 16);
    h = b.gelu(h);
    h = b.layerNorm(h);
    h = b.add(h, x);
    b.output(h);

    GraphStats s = g.stats();
    EXPECT_EQ(s.numGemmOps, 1);
    EXPECT_EQ(s.opsByCategory.at(OpCategory::Activation), 1);
    EXPECT_EQ(s.opsByCategory.at(OpCategory::Normalization), 1);
    EXPECT_EQ(s.opsByCategory.at(OpCategory::ElementWise), 1);
    EXPECT_GT(s.totalFlops, 0);
    EXPECT_EQ(s.gemmFlops, 2.0 * 4 * 16 * 16);
    // linear weight 16x16 + bias 16 + layernorm gamma/beta.
    EXPECT_EQ(s.totalParams, 16 * 16 + 16 + 32);
}

TEST(GraphTest, UseCountsTrackConsumers)
{
    Graph g;
    GraphBuilder b(g);
    Value x = b.input(Shape{4});
    Value a = b.relu(x);
    Value c = b.add(a, a);  // uses a twice
    b.output(c);
    auto uses = g.useCounts();
    EXPECT_EQ(uses[static_cast<size_t>(a.node)], 2);
    EXPECT_EQ(uses[static_cast<size_t>(c.node)], 1);  // graph output
}

TEST(GraphTest, NodesAreTopologicallyOrdered)
{
    Graph g;
    GraphBuilder b(g);
    Value x = b.input(Shape{8});
    Value v = x;
    for (int i = 0; i < 5; ++i)
        v = b.relu(v);
    for (const Node &n : g.nodes())
        for (const Value &in : n.inputs)
            EXPECT_LT(in.node, n.id);
}

TEST(AttrsTest, ScalarAndIntListRoundTrip)
{
    Attrs a;
    a.set("stride", 2).set("eps", 1e-5);
    a.setInts("order", {2, 0, 1});
    EXPECT_EQ(a.getI("stride"), 2);
    EXPECT_DOUBLE_EQ(a.getF("eps"), 1e-5);
    EXPECT_EQ(a.getInts("order").size(), 3u);
    EXPECT_EQ(a.getI("missing", 7), 7);
    EXPECT_TRUE(a.has("stride"));
    EXPECT_FALSE(a.has("nope"));
}

}  // namespace
}  // namespace ngb
