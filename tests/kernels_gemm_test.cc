#include <gtest/gtest.h>

#include <cmath>

#include "ops/kernels.h"

namespace ngb {
namespace {

namespace kn = kernels;

/** Naive reference matmul for cross-checking. */
Tensor
refMatmul(const Tensor &a, const Tensor &b)
{
    int64_t m = a.shape()[0], k = a.shape()[1], n = b.shape()[1];
    Tensor out(Shape{m, n});
    for (int64_t i = 0; i < m; ++i)
        for (int64_t j = 0; j < n; ++j) {
            float acc = 0;
            for (int64_t kk = 0; kk < k; ++kk)
                acc += a.at({i, kk}) * b.at({kk, j});
            out.set({i, j}, acc);
        }
    return out;
}

void
expectClose(const Tensor &a, const Tensor &b, float tol = 1e-4f)
{
    ASSERT_EQ(a.shape(), b.shape());
    for (int64_t i = 0; i < a.numel(); ++i)
        ASSERT_NEAR(a.flatAt(i), b.flatAt(i), tol) << "at " << i;
}

TEST(MatmulTest, MatchesReference)
{
    Tensor a = Tensor::randn(Shape{5, 7}, 1);
    Tensor b = Tensor::randn(Shape{7, 3}, 2);
    expectClose(kn::matmul(a, b), refMatmul(a, b));
}

TEST(MatmulTest, Identity)
{
    Tensor a = Tensor::randn(Shape{4, 4}, 3);
    Tensor eye = Tensor::zeros(Shape{4, 4});
    for (int64_t i = 0; i < 4; ++i)
        eye.set({i, i}, 1.0f);
    expectClose(kn::matmul(a, eye), a);
}

TEST(MatmulTest, ShapeMismatchThrows)
{
    Tensor a = Tensor::zeros(Shape{2, 3});
    Tensor b = Tensor::zeros(Shape{4, 2});
    EXPECT_THROW(kn::matmul(a, b), std::runtime_error);
}

TEST(MatmulTest, WorksOnStridedInput)
{
    Tensor a = Tensor::randn(Shape{6, 4}, 4);
    Tensor at = a.transpose(0, 1);  // non-contiguous [4,6]
    Tensor b = Tensor::randn(Shape{6, 2}, 5);
    expectClose(kn::matmul(at, b), refMatmul(at.contiguous(), b));
}

TEST(LinearTest, MatchesManualComputation)
{
    // y = x @ w^T + b with tiny hand-computable values.
    Tensor x = Tensor::arange(Shape{1, 3});        // [0,1,2]
    Tensor w = Tensor::full(Shape{2, 3}, 1.0f);    // ones
    Tensor bias = Tensor::arange(Shape{2});        // [0,1]
    Tensor y = kn::linear(x, w, bias);
    EXPECT_EQ(y.shape(), (Shape{1, 2}));
    EXPECT_FLOAT_EQ(y.at({0, 0}), 3.0f);
    EXPECT_FLOAT_EQ(y.at({0, 1}), 4.0f);
}

TEST(LinearTest, LeadingDimsFlattened)
{
    Tensor x = Tensor::randn(Shape{2, 5, 3}, 6);
    Tensor w = Tensor::randn(Shape{4, 3}, 7);
    Tensor y = kn::linear(x, w, Tensor());
    EXPECT_EQ(y.shape(), (Shape{2, 5, 4}));
    // Spot-check one row against matmul.
    Tensor row = x.slice(0, 1, 1).slice(1, 2, 1).reshape(Shape{1, 3});
    Tensor wt = w.transpose(0, 1).contiguous();
    Tensor want = kn::matmul(row, wt);
    for (int64_t j = 0; j < 4; ++j)
        EXPECT_NEAR(y.at({1, 2, j}), want.at({0, j}), 1e-4f);
}

TEST(LinearTest, NoBiasMeansPureProduct)
{
    Tensor x = Tensor::full(Shape{1, 2}, 1.0f);
    Tensor w = Tensor::full(Shape{1, 2}, 2.0f);
    Tensor y = kn::linear(x, w, Tensor());
    EXPECT_FLOAT_EQ(y.at({0, 0}), 4.0f);
}

TEST(BmmTest, MatchesPerBatchMatmul)
{
    Tensor a = Tensor::randn(Shape{3, 4, 5}, 8);
    Tensor b = Tensor::randn(Shape{3, 5, 2}, 9);
    Tensor y = kn::bmm(a, b);
    EXPECT_EQ(y.shape(), (Shape{3, 4, 2}));
    for (int64_t i = 0; i < 3; ++i) {
        Tensor ai = a.slice(0, i, 1).reshape(Shape{4, 5});
        Tensor bi = b.slice(0, i, 1).reshape(Shape{5, 2});
        Tensor want = refMatmul(ai, bi);
        for (int64_t r = 0; r < 4; ++r)
            for (int64_t c = 0; c < 2; ++c)
                EXPECT_NEAR(y.at({i, r, c}), want.at({r, c}), 1e-4f);
    }
}

TEST(BmmTest, BatchMismatchThrows)
{
    EXPECT_THROW(kn::bmm(Tensor::zeros(Shape{2, 3, 4}),
                         Tensor::zeros(Shape{3, 4, 5})),
                 std::runtime_error);
}

/** Direct convolution reference (no im2col). */
Tensor
refConv2d(const Tensor &x, const Tensor &w, int stride, int padding)
{
    int64_t n = x.shape()[0], c = x.shape()[1];
    int64_t h = x.shape()[2], wd = x.shape()[3];
    int64_t f = w.shape()[0], r = w.shape()[2], s = w.shape()[3];
    int64_t oh = (h + 2 * padding - r) / stride + 1;
    int64_t ow = (wd + 2 * padding - s) / stride + 1;
    Tensor out(Shape{n, f, oh, ow});
    for (int64_t img = 0; img < n; ++img)
        for (int64_t ff = 0; ff < f; ++ff)
            for (int64_t oy = 0; oy < oh; ++oy)
                for (int64_t ox = 0; ox < ow; ++ox) {
                    float acc = 0;
                    for (int64_t cc = 0; cc < c; ++cc)
                        for (int64_t rr = 0; rr < r; ++rr)
                            for (int64_t ss = 0; ss < s; ++ss) {
                                int64_t iy = oy * stride - padding + rr;
                                int64_t ix = ox * stride - padding + ss;
                                if (iy < 0 || iy >= h || ix < 0 ||
                                    ix >= wd)
                                    continue;
                                acc += x.at({img, cc, iy, ix}) *
                                       w.at({ff, cc, rr, ss});
                            }
                    out.set({img, ff, oy, ox}, acc);
                }
    return out;
}

struct ConvCase {
    int64_t c, f, h;
    int k, stride, padding;
};

class ConvSweep : public ::testing::TestWithParam<ConvCase>
{
};

TEST_P(ConvSweep, MatchesDirectConvolution)
{
    ConvCase p = GetParam();
    Tensor x = Tensor::randn(Shape{1, p.c, p.h, p.h}, 10);
    Tensor w = Tensor::randn(Shape{p.f, p.c, p.k, p.k}, 11);
    Tensor got = kn::conv2d(x, w, Tensor(), p.stride, p.padding);
    Tensor want = refConv2d(x, w, p.stride, p.padding);
    expectClose(got, want, 1e-3f);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ConvSweep,
    ::testing::Values(ConvCase{1, 1, 5, 3, 1, 0}, ConvCase{2, 3, 6, 3, 1, 1},
                      ConvCase{3, 2, 8, 3, 2, 1}, ConvCase{2, 4, 7, 1, 1, 0},
                      ConvCase{1, 2, 9, 5, 2, 2},
                      ConvCase{4, 4, 4, 4, 4, 0}));

TEST(Conv2dTest, BiasAddsPerChannel)
{
    Tensor x = Tensor::full(Shape{1, 1, 3, 3}, 0.0f);
    Tensor w = Tensor::full(Shape{2, 1, 1, 1}, 1.0f);
    Tensor bias = Tensor::arange(Shape{2});
    Tensor y = kn::conv2d(x, w, bias, 1, 0);
    EXPECT_FLOAT_EQ(y.at({0, 0, 1, 1}), 0.0f);
    EXPECT_FLOAT_EQ(y.at({0, 1, 1, 1}), 1.0f);
}

TEST(Conv2dTest, GroupedMatchesPerGroupConv)
{
    // groups=2 convolution equals two half-channel convolutions.
    Tensor x = Tensor::randn(Shape{1, 4, 6, 6}, 12);
    Tensor w = Tensor::randn(Shape{4, 2, 3, 3}, 13);
    Tensor y = kn::conv2d(x, w, Tensor(), 1, 1, 2);

    Tensor x0 = x.slice(1, 0, 2).contiguous();
    Tensor w0 = w.slice(0, 0, 2).contiguous();
    Tensor y0 = refConv2d(x0, w0, 1, 1);
    for (int64_t ff = 0; ff < 2; ++ff)
        for (int64_t i = 0; i < 6; ++i)
            for (int64_t j = 0; j < 6; ++j)
                EXPECT_NEAR(y.at({0, ff, i, j}), y0.at({0, ff, i, j}),
                            1e-3f);
}

TEST(Conv2dTest, DepthwiseGroups)
{
    Tensor x = Tensor::randn(Shape{1, 3, 5, 5}, 14);
    Tensor w = Tensor::randn(Shape{3, 1, 3, 3}, 15);
    Tensor y = kn::conv2d(x, w, Tensor(), 1, 1, 3);
    EXPECT_EQ(y.shape(), (Shape{1, 3, 5, 5}));
    // Channel 0 depends only on input channel 0.
    Tensor x0 = x.slice(1, 0, 1).contiguous();
    Tensor w0 = w.slice(0, 0, 1).contiguous();
    Tensor want = refConv2d(x0, w0, 1, 1);
    for (int64_t i = 0; i < 5; ++i)
        EXPECT_NEAR(y.at({0, 0, i, i}), want.at({0, 0, i, i}), 1e-3f);
}

TEST(Int8LinearTest, MatchesFloatWithinQuantError)
{
    Tensor x = Tensor::randn(Shape{4, 16}, 16);
    Tensor w = Tensor::randn(Shape{8, 16}, 17);
    float xs = kn::absmaxScale(x);
    float ws = kn::absmaxScale(w);
    Tensor xq = kn::quantize(x, xs);
    Tensor wq = kn::quantize(w, ws);
    Tensor got = kn::int8Linear(xq, wq, Tensor(), xs, ws);
    Tensor want = kn::linear(x, w, Tensor());
    // int8 error scales with the value magnitude; loose bound.
    for (int64_t i = 0; i < got.numel(); ++i)
        EXPECT_NEAR(got.flatAt(i), want.flatAt(i),
                    0.12f + 0.03f * std::abs(want.flatAt(i)));
}

TEST(Int8LinearTest, RequiresInt8Inputs)
{
    Tensor x = Tensor::zeros(Shape{1, 4});
    Tensor w = Tensor::zeros(Shape{2, 4}, DType::I8);
    EXPECT_THROW(kn::int8Linear(x, w, Tensor(), 1.0f, 1.0f),
                 std::runtime_error);
}

TEST(QuantizeTest, RoundTripBoundedByScale)
{
    Tensor x = Tensor::randn(Shape{64}, 18);
    float s = kn::absmaxScale(x);
    Tensor deq = kn::dequantize(kn::quantize(x, s), s);
    for (int64_t i = 0; i < x.numel(); ++i)
        EXPECT_NEAR(deq.flatAt(i), x.flatAt(i), s * 0.51f);
}

TEST(QuantizeTest, AbsmaxScaleMapsMaxTo127)
{
    Tensor x = Tensor::zeros(Shape{3});
    x.flatSet(1, -6.35f);
    float s = kn::absmaxScale(x);
    EXPECT_NEAR(s, 6.35f / 127.0f, 1e-6f);
    Tensor q = kn::quantize(x, s);
    EXPECT_EQ(q.flatAt(1), -127.0f);
}

TEST(QuantizeTest, AllZerosGetsUnitScale)
{
    EXPECT_EQ(kn::absmaxScale(Tensor::zeros(Shape{5})), 1.0f);
}

}  // namespace
}  // namespace ngb
