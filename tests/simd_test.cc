/**
 * @file
 * The explicit-SIMD backend: ISA detection and override semantics,
 * backend wiring and per-op fallback, numerics differentials at every
 * host-supported dispatch level (bit-identity where the contract
 * promises it, tolerance where FMA reassociation changes rounding),
 * tile-candidate bit-identity (what makes autotuning a pure timing
 * decision), the persistent tuning cache's round-trip and invalidation
 * rules, ISA-keyed engine caching, and the full-registry differential
 * sweep simd-vs-reference per level.
 */
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <stdexcept>

#include "graph/executor.h"
#include "models/registry.h"
#include "ops/backend.h"
#include "ops/kernels.h"
#include "ops/optimized_kernels.h"
#include "ops/simd_backend.h"
#include "platform/cpu_features.h"
#include "platform/simd.h"
#include "platform/tuning_cache.h"
#include "quant/quant_kernels.h"
#include "quant/weight_pack.h"
#include "runtime/request_util.h"
#include "runtime/thread_pool.h"
#include "serve/engine.h"

namespace ngb {
namespace {

namespace kn = kernels;
namespace ko = kernels::opt;
namespace kq = kernels::qnt;
namespace sd = kernels::sd;
namespace pf = platform;

/** Restore the process dispatch level on scope exit, so per-level
 *  tests cannot leak a forced ISA into later tests. */
class IsaGuard
{
  public:
    IsaGuard() : saved_(pf::activeIsa()) {}
    ~IsaGuard() { pf::setActiveIsa(saved_); }

  private:
    pf::IsaLevel saved_;
};

::testing::AssertionResult
tensorsBitIdentical(const Tensor &a, const Tensor &b)
{
    std::string diff = bitDifference({a}, {b});
    if (diff.empty())
        return ::testing::AssertionSuccess();
    return ::testing::AssertionFailure() << diff;
}

::testing::AssertionResult
tensorsClose(const Tensor &a, const Tensor &b, float rtol = 1e-3f,
             float atol = 1e-5f)
{
    std::string diff = closeDifference({a}, {b}, rtol, atol);
    if (diff.empty())
        return ::testing::AssertionSuccess();
    return ::testing::AssertionFailure() << diff;
}

// ---- ISA detection & override semantics ----------------------------------

TEST(CpuFeaturesTest, IsaNamesRoundTrip)
{
    for (pf::IsaLevel l :
         {pf::IsaLevel::Scalar, pf::IsaLevel::Neon, pf::IsaLevel::Avx2,
          pf::IsaLevel::Avx512})
        EXPECT_EQ(pf::isaFromName(pf::isaName(l)), l);
    EXPECT_EQ(pf::isaFromName("auto"), pf::detectIsa());
    try {
        pf::isaFromName("bogus");
        FAIL() << "expected isaFromName to throw";
    } catch (const std::exception &e) {
        // The error lists the valid names, so a typoed --isa is
        // self-correcting.
        EXPECT_NE(std::string(e.what()).find("scalar"),
                  std::string::npos);
    }
}

TEST(CpuFeaturesTest, SupportedLevelsAscendFromScalar)
{
    std::vector<pf::IsaLevel> levels = pf::supportedIsaLevels();
    ASSERT_FALSE(levels.empty());
    EXPECT_EQ(levels.front(), pf::IsaLevel::Scalar);
    for (size_t i = 1; i < levels.size(); ++i)
        EXPECT_LT(static_cast<int>(levels[i - 1]),
                  static_cast<int>(levels[i]));
    EXPECT_EQ(levels.back(), pf::detectIsa());
}

TEST(CpuFeaturesTest, ForcingSupportedLevelsWorksOveraskThrows)
{
    IsaGuard guard;
    for (pf::IsaLevel l : pf::supportedIsaLevels()) {
        pf::setActiveIsa(l);
        EXPECT_EQ(pf::activeIsa(), l);
    }
    // Any level above what this host/build dispatches must be a loud
    // error, never a silent illegal-instruction time bomb.
    for (int l = static_cast<int>(pf::detectIsa()) + 1;
         l <= static_cast<int>(pf::IsaLevel::Avx512); ++l)
        EXPECT_THROW(pf::setActiveIsa(static_cast<pf::IsaLevel>(l)),
                     std::exception);
    pf::setActiveIsaName("auto");
    EXPECT_EQ(pf::activeIsa(), pf::detectIsa());
}

// ---- backend wiring & per-op fallback ------------------------------------

TEST(SimdBackendTest, RegisteredWithFallbackChainToOptimized)
{
    const Backend &b = findBackend("simd");
    EXPECT_EQ(b.name(), "simd");
    ASSERT_NE(b.fallback(), nullptr);
    EXPECT_EQ(b.fallback()->name(), "optimized");
    ASSERT_NE(b.fallback()->fallback(), nullptr);
    EXPECT_EQ(b.fallback()->fallback()->name(), "reference");

    bool listed = false;
    for (const std::string &n : backendNames())
        listed = listed || n == "simd";
    EXPECT_TRUE(listed);
}

TEST(SimdBackendTest, ScalarLevelRegistersNothingButStillResolves)
{
    Backend b = makeSimdBackend(pf::IsaLevel::Scalar);
    EXPECT_EQ(b.numKernels(), 0u);
    EXPECT_FALSE(b.handles(OpKind::MatMul));
    // Per-op degradation: every kernel resolves through the chain.
    EXPECT_NO_THROW(b.kernelFor(OpKind::MatMul));
    EXPECT_NO_THROW(b.kernelFor(OpKind::Conv2d));
}

TEST(SimdBackendTest, UnregisteredOpsFallThroughPerOp)
{
    for (pf::IsaLevel l : pf::supportedIsaLevels()) {
        Backend b = makeSimdBackend(l);
        // Never registered at any level: conv, softmax, the
        // transcendental activations, fused groups.
        EXPECT_FALSE(b.handles(OpKind::Conv2d));
        EXPECT_FALSE(b.handles(OpKind::Softmax));
        EXPECT_FALSE(b.handles(OpKind::GELU));
        EXPECT_FALSE(b.handles(OpKind::Fused));
        EXPECT_NO_THROW(b.kernelFor(OpKind::Conv2d));
        if (l != pf::IsaLevel::Scalar) {
            EXPECT_TRUE(b.handles(OpKind::MatMul));
            EXPECT_TRUE(b.handles(OpKind::Linear));
            EXPECT_TRUE(b.handles(OpKind::LayerNorm));
        }
    }
}

// ---- per-level kernel differentials --------------------------------------

TEST(SimdKernelsTest, GemmMatchesReferenceAtEveryLevel)
{
    IsaGuard guard;
    const int64_t shapes[][3] = {
        {1, 1, 1},  {3, 5, 7},   {8, 16, 8},
        {5, 4, 64}, {64, 33, 17}, {17, 96, 33},
    };
    for (pf::IsaLevel l : pf::supportedIsaLevels()) {
        pf::setActiveIsa(l);
        for (const auto &s : shapes) {
            Tensor a = Tensor::randn(Shape{s[0], s[1]}, 7);
            Tensor b = Tensor::randn(Shape{s[1], s[2]}, 8);
            // FMA vs mul+add rounding: tolerance, not bit-identity.
            EXPECT_TRUE(tensorsClose(sd::matmul(a, b), kn::matmul(a, b)))
                << pf::isaName(l) << " " << s[0] << "x" << s[1] << "x"
                << s[2];
        }
        Tensor x = Tensor::randn(Shape{9, 48}, 9);
        Tensor w = Tensor::randn(Shape{33, 48}, 10);  // [N,K]
        Tensor bias = Tensor::randn(Shape{33}, 11);
        Tensor wt = ko::packWeightTranspose(w);
        EXPECT_TRUE(tensorsClose(sd::linearPacked(x, wt, bias),
                                 kn::linear(x, w, bias)))
            << pf::isaName(l);
        Tensor ba = Tensor::randn(Shape{3, 5, 12}, 12);
        Tensor bb = Tensor::randn(Shape{3, 12, 9}, 13);
        EXPECT_TRUE(tensorsClose(sd::bmm(ba, bb), kn::bmm(ba, bb)))
            << pf::isaName(l);
    }
}

TEST(SimdKernelsTest, ElementwiseBitIdenticalAtEveryLevel)
{
    IsaGuard guard;
    for (pf::IsaLevel l : pf::supportedIsaLevels()) {
        pf::setActiveIsa(l);
        for (int64_t n : {int64_t(1), int64_t(7), int64_t(64),
                          int64_t(1000)}) {
            Tensor x = Tensor::randn(Shape{n}, 21);
            Tensor y = Tensor::randn(Shape{n}, 22);
            EXPECT_TRUE(tensorsBitIdentical(sd::relu(x), kn::relu(x)))
                << pf::isaName(l) << " n=" << n;
            EXPECT_TRUE(tensorsBitIdentical(sd::add(x, y), kn::add(x, y)))
                << pf::isaName(l) << " n=" << n;
            EXPECT_TRUE(tensorsBitIdentical(sd::mul(x, y), kn::mul(x, y)))
                << pf::isaName(l) << " n=" << n;
            EXPECT_TRUE(tensorsBitIdentical(sd::addScalar(x, 0.5f),
                                            kn::addScalar(x, 0.5f)))
                << pf::isaName(l) << " n=" << n;
            EXPECT_TRUE(tensorsBitIdentical(sd::mulScalar(x, -1.5f),
                                            kn::mulScalar(x, -1.5f)))
                << pf::isaName(l) << " n=" << n;
        }
    }
}

TEST(SimdKernelsTest, LayerNormWithinToleranceAtEveryLevel)
{
    IsaGuard guard;
    for (pf::IsaLevel l : pf::supportedIsaLevels()) {
        pf::setActiveIsa(l);
        for (int64_t d : {int64_t(3), int64_t(17), int64_t(256)}) {
            Tensor x = Tensor::randn(Shape{5, d}, 31);
            Tensor g = Tensor::randn(Shape{d}, 32, 0.1f);
            Tensor b = Tensor::randn(Shape{d}, 33, 0.1f);
            EXPECT_TRUE(tensorsClose(sd::layerNorm(x, g, b, 1e-5f),
                                     kn::layerNorm(x, g, b, 1e-5f),
                                     1e-3f, 1e-4f))
                << pf::isaName(l) << " d=" << d;
        }
    }
}

// ---- tile candidates: bit-identity is what makes tuning safe -------------

TEST(SimdKernelsTest, EveryTileCandidateProducesIdenticalBits)
{
    IsaGuard guard;
    for (pf::IsaLevel l : pf::supportedIsaLevels()) {
        if (l == pf::IsaLevel::Scalar)
            continue;
        pf::setActiveIsa(l);
        const std::vector<simd::TileConfig> &cands =
            simd::gemmTileCandidates(l);
        ASSERT_GT(cands.size(), 1u) << pf::isaName(l);
        for (const auto &s :
             {std::pair<int64_t, int64_t>{33, 47},
              std::pair<int64_t, int64_t>{8, 8},
              std::pair<int64_t, int64_t>{1, 64}}) {
            Tensor a = Tensor::randn(Shape{s.first, s.second}, 41);
            Tensor b = Tensor::randn(Shape{s.second, 29}, 42);
            Tensor want = sd::matmulTiled(a, b, cands[0]);
            for (size_t i = 1; i < cands.size(); ++i)
                EXPECT_TRUE(tensorsBitIdentical(
                    sd::matmulTiled(a, b, cands[i]), want))
                    << pf::isaName(l) << " candidate " << i;
        }
    }
}

// ---- int8: exact i32 accumulation => bit-identity everywhere -------------

TEST(SimdKernelsTest, Int8RequantBitIdenticalIncludingKTails)
{
    IsaGuard guard;
    // K % 4 != 0 exercises the dot-product kernels' tail path (and
    // the VNNI +128 compensation must cover only the interleaved
    // body); K < 4 is all-tail.
    const int64_t shapes[][3] = {
        {2, 3, 5}, {5, 7, 9}, {8, 33, 16}, {3, 64, 20}, {4, 50, 40},
    };
    for (pf::IsaLevel l : pf::supportedIsaLevels()) {
        pf::setActiveIsa(l);
        for (const auto &s : shapes) {
            Tensor x = Tensor::randn(Shape{s[0], s[1]}, 51);
            Tensor w = Tensor::randn(Shape{s[2], s[1]}, 52);
            Tensor bias = Tensor::randn(Shape{s[2]}, 53);
            auto [xq, xs] = kq::quantizeActivation(x);
            float xScale = kq::scaleValue(xs);
            Tensor scales = quant::perChannelScales(w);
            Tensor wtq = quant::packWeightInt8(w, scales);
            Tensor want = kq::int8LinearPackedRequant(
                xq, xScale, wtq, scales, bias, nullptr, 0);
            Tensor got = sd::int8LinearRequant(
                xq, xScale, sd::packInt8Weight(wtq), scales, bias);
            EXPECT_TRUE(tensorsBitIdentical(got, want))
                << pf::isaName(l) << " " << s[0] << "x" << s[1] << "x"
                << s[2];
        }
    }
}

// ---- tuning cache --------------------------------------------------------

TEST(TuningCacheTest, TunesOncePersistsAndReplaysWarm)
{
    const std::string path = "simd_tune_test.json";
    std::remove(path.c_str());
    const simd::TuneKey key{"matmul", "8x8x8", "avx2"};
    {
        simd::TuningCache cache(path);
        int runs = 0;
        int choice = cache.choose(key, 3, [&](int i) {
            ++runs;
            return i == 1 ? 10.0 : 30.0 + i;
        });
        EXPECT_EQ(choice, 1);
        EXPECT_EQ(runs, 3);
        EXPECT_EQ(cache.stats().tuneRuns, 3u);
        EXPECT_EQ(cache.stats().tunedKeys, 1u);
        EXPECT_TRUE(cache.contains(key));
        // Second lookup in the same process replays in-memory.
        EXPECT_EQ(cache.choose(key, 3,
                               [&](int) {
                                   ADD_FAILURE() << "re-tuned";
                                   return 0.0;
                               }),
                  1);
        EXPECT_EQ(cache.stats().replays, 1u);
    }
    {
        // A fresh cache on the same file starts warm: zero tuning
        // runs — the --expect-warm contract.
        simd::TuningCache cache(path);
        EXPECT_EQ(cache.stats().entriesLoaded, 1u);
        EXPECT_EQ(cache.choose(key, 3,
                               [&](int) {
                                   ADD_FAILURE() << "cold reload";
                                   return 0.0;
                               }),
                  1);
        EXPECT_EQ(cache.stats().tuneRuns, 0u);
        EXPECT_EQ(cache.stats().replays, 1u);
        // A stored choice that no longer names a valid candidate
        // (the candidate list shrank) re-tunes instead of replaying
        // out of range.
        int runs = 0;
        cache.choose({"matmul", "8x8x8", "avx2"}, 1, [&](int) {
            ++runs;
            return 1.0;
        });
        EXPECT_EQ(runs, 0);  // nCandidates <= 1 short-circuits
    }
    std::remove(path.c_str());
}

TEST(TuningCacheTest, AnotherMachinesFileIsRejectedWholesale)
{
    const std::string path = "simd_tune_othermachine.json";
    {
        std::ofstream f(path);
        f << "{\n  \"version\": 1,\n  \"machine\": \"other-box\",\n"
          << "  \"entries\": [\n"
          << "    {\"op\":\"matmul\",\"shape\":\"8x8x8\","
          << "\"isa\":\"avx2\",\"choice\":2,\"ns\":5.0}\n  ]\n}\n";
    }
    simd::TuningCache cache(path);
    EXPECT_EQ(cache.stats().entriesLoaded, 0u);
    EXPECT_EQ(cache.stats().entriesRejected, 1u);
    EXPECT_EQ(cache.entries(), 0u);
    std::remove(path.c_str());
}

// ---- engine cache keys on ISA --------------------------------------------

TEST(SimdEngineCacheTest, KeysDifferingOnlyInIsaAreDistinct)
{
    serve::EngineKey a, b;
    b.isa = "avx2";
    EXPECT_TRUE(a < b || b < a);
}

TEST(SimdEngineCacheTest, ActiveIsaFlowsIntoEngineKeys)
{
    std::vector<pf::IsaLevel> levels = pf::supportedIsaLevels();
    if (levels.size() < 2)
        GTEST_SKIP() << "host dispatches a single level";
    IsaGuard guard;
    ThreadPool pool(1);
    serve::EngineConfig cfg;  // cfg.isa empty: resolves at get() time
    serve::EngineCache cache(pool, cfg);
    pf::setActiveIsa(levels.front());
    cache.get("vit_b");
    pf::setActiveIsa(levels.back());
    cache.get("vit_b");
    EXPECT_EQ(cache.stats().engines, 2u);
    EXPECT_EQ(cache.stats().misses, 2);
}

// ---- full-registry differential sweep per level --------------------------

class SimdDifferentialTest
    : public ::testing::TestWithParam<models::ModelInfo>
{
};

TEST_P(SimdDifferentialTest, SimdMatchesReferenceAtEveryLevel)
{
    const models::ModelInfo &info = GetParam();
    Graph g = info.build(ModelConfig{1, 8, false, 0, 8});
    std::vector<Tensor> inputs = makeRequestInputs(g, 99);

    Executor ref(g, referenceBackend());
    std::vector<Tensor> want = ref.run(inputs);

    for (pf::IsaLevel l : pf::supportedIsaLevels()) {
        Backend b = makeSimdBackend(l);
        Executor ex(g, b);
        EXPECT_EQ(closeDifference(ex.run(inputs), want), "")
            << info.name << " at " << pf::isaName(l);
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllRegistryModels, SimdDifferentialTest,
    ::testing::ValuesIn(models::modelRegistry()),
    [](const ::testing::TestParamInfo<models::ModelInfo> &i) {
        return i.param.name;
    });

}  // namespace
}  // namespace ngb
