#include <gtest/gtest.h>

#include <sstream>

#include "graph/builder.h"
#include "graph/executor.h"
#include "models/registry.h"
#include "ops/kernels.h"
#include "profiler/workload_report.h"

namespace ngb {
namespace {

TEST(PadOpTest, KernelZeroFillsBorder)
{
    Tensor x = Tensor::full(Shape{2, 3}, 5.0f);
    Tensor y = kernels::pad(x, 1, 1, 2);
    EXPECT_EQ(y.shape(), (Shape{2, 6}));
    EXPECT_FLOAT_EQ(y.at({0, 0}), 0.0f);
    EXPECT_FLOAT_EQ(y.at({0, 1}), 5.0f);
    EXPECT_FLOAT_EQ(y.at({0, 3}), 5.0f);
    EXPECT_FLOAT_EQ(y.at({1, 4}), 0.0f);
    EXPECT_FLOAT_EQ(y.at({1, 5}), 0.0f);
}

TEST(PadOpTest, BuilderAndExecutorRoundTrip)
{
    Graph g;
    GraphBuilder b(g);
    Value x = b.input(Shape{1, 3, 3, 2});
    Value p = b.pad(x, 1, 0, 2);
    Value back = b.slice(p, 1, 0, 3);
    b.output(back);
    EXPECT_EQ(g.shapeOf(p), (Shape{1, 5, 3, 2}));
    EXPECT_EQ(g.node(p.node).category(), OpCategory::Memory);
    EXPECT_FALSE(g.node(p.node).cost.zeroCopy);  // a real copy

    Executor ex(g);
    Tensor in = Tensor::randn(Shape{1, 3, 3, 2}, 77);
    auto out = ex.run({in});
    for (int64_t i = 0; i < in.numel(); ++i)
        EXPECT_FLOAT_EQ(out[0].flatAt(i), in.flatAt(i));
}

TEST(PadOpTest, SwinPadsNonDivisibleStages)
{
    // MaskFormer's 800px input gives 200/100/50/25 stages against a
    // window of 12 — every block must pad.
    ModelConfig cfg;
    Graph g = models::findModel("maskformer").build(cfg);
    int64_t pads = 0;
    for (const Node &n : g.nodes())
        pads += n.kind == OpKind::Pad;
    EXPECT_GT(pads, 40);  // 24 blocks x ~2 pads
}

TEST(PadOpTest, DivisibleSwinHasNoPads)
{
    ModelConfig cfg;  // 224px, window 7: 56/28/14/7 all divisible
    Graph g = models::findModel("swin_t").build(cfg);
    for (const Node &n : g.nodes())
        EXPECT_NE(n.kind, OpKind::Pad);
}

TEST(WorkloadReportTest, CountsAndLaunches)
{
    ModelConfig cfg;
    cfg.seqLen = 8;
    Graph g = models::findModel("gpt2").build(cfg);
    WorkloadReport r = buildWorkloadReport(g);
    EXPECT_EQ(r.model, "gpt2");
    EXPECT_EQ(r.stats.numOps, g.stats().numOps);

    const OpKindSummary *gelu = r.find(OpKind::GELU);
    ASSERT_NE(gelu, nullptr);
    EXPECT_EQ(gelu->count, 12);             // one per block
    EXPECT_EQ(gelu->launches, 12 * 8);      // composite NewGELU
    ASSERT_FALSE(gelu->exampleShapes.empty());
    EXPECT_EQ(gelu->exampleShapes[0], (Shape{1, 8, 3072}));

    const OpKindSummary *ln = r.find(OpKind::LayerNorm);
    ASSERT_NE(ln, nullptr);
    EXPECT_EQ(ln->count, 25);  // 2 per block + final
    EXPECT_EQ(r.find(OpKind::NMS), nullptr);
}

TEST(WorkloadReportTest, SortedByLaunches)
{
    ModelConfig cfg;
    Graph g = models::findModel("detr").build(cfg);
    WorkloadReport r = buildWorkloadReport(g);
    for (size_t i = 1; i < r.byKind.size(); ++i)
        EXPECT_GE(r.byKind[i - 1].launches, r.byKind[i].launches);
}

TEST(WorkloadReportTest, CsvAndPrintOutputs)
{
    ModelConfig cfg;
    cfg.testScale = 8;
    Graph g = models::findModel("bert").build(cfg);
    WorkloadReport r = buildWorkloadReport(g);
    std::ostringstream csv;
    writeWorkloadCsv(r, csv);
    EXPECT_NE(csv.str().find("op,category,count"), std::string::npos);
    EXPECT_NE(csv.str().find("layer_norm"), std::string::npos);
    std::ostringstream txt;
    printWorkloadReport(r, txt);
    EXPECT_NE(txt.str().find("Workload report: bert"), std::string::npos);
}

TEST(DecodeStepTest, LlamaDecodeAppendsKvCache)
{
    ModelConfig cfg;
    cfg.seqLen = 64;  // cache length
    cfg.decodeStep = true;
    Graph g = models::findModel("llama2").build(cfg);
    EXPECT_EQ(g.name(), "llama2-7b-decode");
    int64_t appends = 0;
    for (const Node &n : g.nodes())
        if (n.kind == OpKind::Concat &&
            n.name.find("kv_append") != std::string::npos)
            ++appends;
    EXPECT_EQ(appends, 64);  // 2 per layer x 32 layers

    // Query length is 1; logits attend over cache+1.
    bool found_logits = false;
    for (const Node &n : g.nodes())
        if (n.kind == OpKind::BMM && n.outShapes[0].rank() == 3 &&
            n.outShapes[0][1] == 1 && n.outShapes[0][2] == 65)
            found_logits = true;
    EXPECT_TRUE(found_logits);
}

TEST(DecodeStepTest, DecodeFlopsFarBelowPrefill)
{
    ModelConfig prefill, decode;
    prefill.seqLen = decode.seqLen = 128;
    decode.decodeStep = true;
    Graph gp = models::findModel("gpt2").build(prefill);
    Graph gd = models::findModel("gpt2").build(decode);
    EXPECT_LT(gd.stats().totalFlops, gp.stats().totalFlops / 20.0);
    // But the op count barely changes: overhead-bound by design.
    EXPECT_GT(gd.stats().numOps, gp.stats().numOps / 2);
}

TEST(DecodeStepTest, DecodeGraphExecutesTiny)
{
    ModelConfig cfg;
    cfg.seqLen = 16;
    cfg.decodeStep = true;
    cfg.testScale = 8;
    for (const char *m : {"gpt2", "llama3"}) {
        Graph g = models::findModel(m).build(cfg);
        Executor ex(g);
        Tensor ids(g.shapeOf(g.graphInputs()[0]), DType::I32);
        for (int64_t i = 0; i < ids.numel(); ++i)
            ids.flatSet(i, 3.0f);
        auto out = ex.run({ids});
        ASSERT_FALSE(out.empty()) << m;
        EXPECT_EQ(out[0].shape()[1], 1) << m;  // one-token logits
    }
}

}  // namespace
}  // namespace ngb
