/**
 * @file
 * Executable fusion: applyFusion as a graph rewrite, proven correct by
 * a differential suite (every registry model x {reference, optimized}
 * backend x {serial, wavefront} runtime: fused output bit-identical to
 * unfused on order-preserving chains, within tolerance where the
 * optimized backend pre-merges Conv+BN affines) and a seeded
 * property/fuzz harness over random point-wise chain graphs.
 */
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "deploy/fusion.h"
#include "graph/builder.h"
#include "graph/executor.h"
#include "graph/validate.h"
#include "models/registry.h"
#include "ops/backend.h"
#include "ops/fused_kernels.h"
#include "runtime/batch_driver.h"
#include "runtime/parallel_executor.h"
#include "runtime/request_util.h"
#include "runtime/thread_pool.h"
#include "serve/engine.h"

namespace ngb {
namespace {

/** Count original operators represented by the rewritten graph. */
size_t
representedOps(const Graph &fused)
{
    size_t n = 0;
    for (const Node &node : fused.nodes())
        n += node.kind == OpKind::Fused ? node.fusedBody.size() : 1;
    return n;
}

/**
 * True when the rewrite produced a Conv2d-headed fused group — the one
 * pattern the optimized backend executes with pre-merged affines /
 * the tiled conv core, i.e. the documented tolerance (not
 * bit-identity) case.
 */
bool
hasConvHeadedFusion(const Graph &g)
{
    for (const Node &n : g.nodes())
        if (n.kind == OpKind::Fused && !n.fusedBody.empty() &&
            n.fusedBody[0].kind == OpKind::Conv2d)
            return true;
    return false;
}

void
expectValid(const Graph &g, const std::string &context)
{
    ValidationResult vr = validateGraph(g);
    EXPECT_TRUE(vr.ok()) << context << ":\n" << formatIssues(vr);
}

// ---- differential suite over the registry ---------------------------------

class FusionDifferentialTest
    : public ::testing::TestWithParam<models::ModelInfo>
{
};

TEST_P(FusionDifferentialTest, FusedMatchesUnfusedSerialAndWavefront)
{
    const models::ModelInfo &info = GetParam();
    Graph g = info.build(ModelConfig{1, 8, false, 0, 8});

    FusionStats st;
    Graph fused = applyFusion(g, executableFusionConfig(), &st);
    expectValid(fused, info.name);

    // The rewrite is a partition: every executable operator of the
    // original graph appears exactly once (as a member or a copy).
    EXPECT_EQ(representedOps(fused), g.size()) << info.name;
    EXPECT_LE(st.fusedWithGemm, st.fusedNonGemm) << info.name;
    EXPECT_LE(st.fusedNonGemm, st.totalNonGemm) << info.name;

    std::vector<Tensor> inputs = makeRequestInputs(g, 1234);
    ASSERT_EQ(makeRequestInputs(fused, 1234).size(), inputs.size());

    const bool conv_fused = hasConvHeadedFusion(fused);
    for (const Backend *backend :
         {&referenceBackend(), &optimizedBackend()}) {
        Executor unf(g, *backend);
        std::vector<Tensor> want = unf.run(inputs);

        Executor fex(fused, *backend);
        std::vector<Tensor> got = fex.run(inputs);

        if (backend == &optimizedBackend() && conv_fused) {
            // Conv+BN merged affines reassociate the per-element
            // scale: tolerance, the documented contract.
            EXPECT_EQ(closeDifference(got, want), "")
                << info.name << " [" << backend->name() << "]";
        } else {
            // Order-preserving chains: interpretation / single-pass /
            // GEMM epilogues evaluate the same float expressions in
            // the same per-element order. Not one bit may change.
            EXPECT_EQ(bitDifference(got, want), "")
                << info.name << " [" << backend->name() << "]";
        }

        // Wavefront execution of the fused graph must be bit-identical
        // to its serial walk, whatever the backend.
        ThreadPool pool(4);
        ParallelExecutor pex(fused, pool, *backend);
        EXPECT_EQ(bitDifference(pex.run(inputs), got), "")
            << info.name << " [" << backend->name() << " wavefront]";
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllRegistryModels, FusionDifferentialTest,
    ::testing::ValuesIn(models::modelRegistry()),
    [](const ::testing::TestParamInfo<models::ModelInfo> &i) {
        return i.param.name;
    });

// ---- targeted chain shapes ------------------------------------------------

TEST(FusionExecTest, BinaryMemberWithExternalOperandEitherPort)
{
    for (bool chain_second : {false, true}) {
        Graph g;
        GraphBuilder b(g);
        Value x = b.input(Shape{4, 16});
        Value y = b.input(Shape{4, 16});
        Value r = b.relu(x);
        Value s = chain_second ? b.add(y, r) : b.add(r, y);
        b.output(b.tanh(s));

        FusionConfig cfg;
        cfg.fusePointwiseChains = true;
        Graph fused = applyFusion(g, cfg);
        expectValid(fused, "binary member chain");

        // relu+add+tanh collapse into one fused node with two
        // external inputs.
        int fused_nodes = 0;
        for (const Node &n : fused.nodes())
            if (n.kind == OpKind::Fused) {
                ++fused_nodes;
                EXPECT_EQ(n.fusedBody.size(), 3u);
                EXPECT_EQ(n.inputs.size(), 2u);
            }
        EXPECT_EQ(fused_nodes, 1);

        std::vector<Tensor> inputs = makeRequestInputs(g, 77);
        for (const Backend *backend :
             {&referenceBackend(), &optimizedBackend()}) {
            Executor unf(g, *backend);
            Executor fex(fused, *backend);
            EXPECT_EQ(bitDifference(fex.run(inputs), unf.run(inputs)),
                      "")
                << backend->name()
                << (chain_second ? " (chain on port 1)" : "");
        }
    }
}

TEST(FusionExecTest, LinearEpilogueFusesIntoGemmAndStaysBitIdentical)
{
    Graph g;
    GraphBuilder b(g);
    Value x = b.input(Shape{5, 33});
    Value h = b.linear(x, 47, true, "fc");
    Value a = b.gelu(h);
    b.output(b.mulScalar(a, 0.5));

    FusionStats st;
    Graph fused = applyFusion(g, executableFusionConfig(), &st);
    expectValid(fused, "linear epilogue");
    EXPECT_EQ(st.fusedWithGemm, 2);  // gelu + mul folded into the GEMM

    ASSERT_EQ(fused.graphOutputs().size(), 1u);
    const Node &f = fused.node(fused.graphOutputs()[0].node);
    ASSERT_EQ(f.kind, OpKind::Fused);
    EXPECT_EQ(f.fusedBody[0].kind, OpKind::Linear);
    EXPECT_EQ(f.category(), OpCategory::Gemm);

    std::vector<Tensor> inputs = makeRequestInputs(g, 5);
    for (const Backend *backend :
         {&referenceBackend(), &optimizedBackend()}) {
        Executor unf(g, *backend);
        Executor fex(fused, *backend);
        EXPECT_EQ(bitDifference(fex.run(inputs), unf.run(inputs)), "")
            << backend->name();
    }
}

TEST(FusionExecTest, ConvBnReluMergedAffineWithinTolerance)
{
    Graph g;
    GraphBuilder b(g);
    Value x = b.input(Shape{1, 4, 10, 10});
    Value c = b.conv2d(x, 8, 3, 1, 1, 1, true, "conv");
    Value n = b.batchNorm2d(c);
    b.output(b.relu(n));

    FusionConfig cfg;
    cfg.fuseConvBnRelu = true;
    Graph fused = applyFusion(g, cfg);
    expectValid(fused, "conv+bn+relu");
    ASSERT_TRUE(hasConvHeadedFusion(fused));

    std::vector<Tensor> inputs = makeRequestInputs(g, 11);
    // Reference interprets the chain: bit-identical.
    Executor runf(g, referenceBackend());
    Executor rfex(fused, referenceBackend());
    EXPECT_EQ(bitDifference(rfex.run(inputs), runf.run(inputs)), "");
    // Optimized pre-merges the affine: tolerance.
    Executor ounf(g, optimizedBackend());
    Executor ofex(fused, optimizedBackend());
    EXPECT_EQ(closeDifference(ofex.run(inputs), ounf.run(inputs)), "");
}

TEST(FusionExecTest, BatchDriverRunsFusedGraphsBitIdentically)
{
    Graph g = models::findModel("vit_b").build(ModelConfig{1, 8, false,
                                                           0, 16});
    Graph fused = applyFusion(g, executableFusionConfig());
    ThreadPool pool(2);
    std::vector<std::vector<Tensor>> reqs = {makeRequestInputs(g, 1),
                                             makeRequestInputs(g, 2)};
    BatchDriver driver(fused, pool, optimizedBackend());
    auto outs = driver.run(reqs);
    EXPECT_TRUE(driver.profile().fused);

    Executor serial(fused, optimizedBackend());
    for (size_t r = 0; r < reqs.size(); ++r)
        EXPECT_EQ(bitDifference(outs[r], serial.run(reqs[r])), "");
    Executor unfused(g, optimizedBackend());
    for (size_t r = 0; r < reqs.size(); ++r)
        EXPECT_EQ(bitDifference(outs[r], unfused.run(reqs[r])), "");
}

// ---- property / fuzz: random point-wise chain graphs ----------------------

/** xorshift64* so the fuzz graphs are identical on every platform. */
struct Rng {
    uint64_t s;
    explicit Rng(uint64_t seed) : s(seed * 2685821657736338717ull + 1) {}
    uint64_t next()
    {
        s ^= s >> 12;
        s ^= s << 25;
        s ^= s >> 27;
        return s * 2685821657736338717ull;
    }
    int below(int n) { return static_cast<int>(next() % static_cast<uint64_t>(n)); }
};

/** Append one random op to the chain; layout ops interleave. */
Value
randomChainOp(GraphBuilder &b, Rng &rng, Value v, bool *is_layout)
{
    *is_layout = false;
    switch (rng.below(12)) {
      case 0:
        return b.relu(v);
      case 1:
        return b.gelu(v);
      case 2:
        return b.tanh(v);
      case 3:
        return b.sigmoid(v);
      case 4:
        return b.addScalar(v, 0.25);
      case 5:
        return b.mulScalar(v, 1.5);
      case 6:
        return b.layerNorm(v);
      case 7:
        return b.softmax(v, -1);
      case 8:  // Q/DQ pair: mixed dtypes (I8 intermediate) inside the
               // chain region.
        return b.dequantize(b.quantize(v));
      case 9:
        *is_layout = true;
        return b.transpose(v, 0, 1);  // zero-copy layout op
      case 10:
        *is_layout = true;
        return b.unsqueeze(v, 0);  // zero-copy, rank changes
      default:
        return b.neg(v);
    }
}

TEST(FusionPropertyTest, RandomChainsSurviveApplyFusion)
{
    constexpr int kSeeds = 40;
    for (uint64_t seed = 0; seed < kSeeds; ++seed) {
        Rng rng(seed + 1);
        Graph g;
        GraphBuilder b(g);
        int64_t rows = 2 + rng.below(6);
        int64_t cols = 3 + rng.below(29);
        Value v = b.input(Shape{rows, cols});
        int len = 1 + rng.below(8);
        for (int i = 0; i < len; ++i) {
            bool is_layout = false;
            v = randomChainOp(b, rng, v, &is_layout);
        }
        b.output(v);

        for (bool through_layout : {false, true}) {
            FusionConfig cfg;
            cfg.fusePointwiseChains = true;
            cfg.fuseThroughLayout = through_layout;

            FusionStats st;
            Graph fused = applyFusion(g, cfg, &st);

            // Invariants: structural validity (includes topological
            // order), partition completeness, stats sanity.
            expectValid(fused, "seed " + std::to_string(seed));
            EXPECT_EQ(representedOps(fused), g.size())
                << "seed " << seed;
            EXPECT_LE(st.fusedNonGemm, st.totalNonGemm)
                << "seed " << seed;

            // Never fuse across layout ops unless fuseThroughLayout.
            if (!through_layout) {
                for (const Node &n : fused.nodes()) {
                    if (n.kind != OpKind::Fused)
                        continue;
                    for (OpKind k : n.fusedKinds)
                        EXPECT_NE(opCategoryOf(k), OpCategory::Memory)
                            << "seed " << seed
                            << ": layout op fused without "
                               "fuseThroughLayout";
                }
            }

            // Differential: rewritten graph computes the same bits.
            std::vector<Tensor> inputs = makeRequestInputs(g, seed);
            Executor unf(g, referenceBackend());
            Executor fex(fused, referenceBackend());
            EXPECT_EQ(bitDifference(fex.run(inputs), unf.run(inputs)),
                      "")
                << "seed " << seed;
            Executor ounf(g, optimizedBackend());
            Executor ofex(fused, optimizedBackend());
            EXPECT_EQ(bitDifference(ofex.run(inputs), ounf.run(inputs)),
                      "")
                << "seed " << seed << " [optimized]";
        }
    }
}

// ---- FusionStats edge cases -----------------------------------------------

TEST(FusionStatsTest, ZeroNonGemmNodesNeverDividesByZero)
{
    Graph g;
    GraphBuilder b(g);
    Value x = b.input(Shape{2, 8});
    b.output(b.linear(x, 8, false, "only_gemm"));

    FusionStats st;
    fuseGraph(g, executableFusionConfig(), &st);
    EXPECT_EQ(st.totalNonGemm, 0);
    EXPECT_EQ(st.fusedNonGemm, 0);
    EXPECT_EQ(st.fusedWithGemm, 0);
    EXPECT_EQ(st.fusionRate(), 0.0);
    EXPECT_EQ(st.fusionRate(), st.fusionRate());  // not NaN
}

TEST(FusionStatsTest, MinChainLenAboveChainLengthsFusesNothing)
{
    Graph g;
    GraphBuilder b(g);
    Value x = b.input(Shape{32});
    Value v = b.relu(x);
    v = b.tanh(v);
    v = b.sigmoid(v);
    b.output(v);

    FusionConfig cfg;
    cfg.fusePointwiseChains = true;
    cfg.minChainLen = 99;
    FusionStats st;
    auto groups = fuseGraph(g, cfg, &st);
    EXPECT_EQ(groups.size(), 3u);
    EXPECT_EQ(st.fusedNonGemm, 0);
    EXPECT_EQ(st.fusedWithGemm, 0);
    EXPECT_EQ(st.fusionRate(), 0.0);
    for (const KernelGroup &kg : groups)
        EXPECT_EQ(kg.nodeIds.size(), 1u);
}

TEST(FusionStatsTest, NonPositiveMinChainLenBehavesLikeOne)
{
    Graph g;
    GraphBuilder b(g);
    Value x = b.input(Shape{32});
    b.output(b.relu(x));

    for (int min_len : {0, -5}) {
        FusionConfig cfg;
        cfg.fusePointwiseChains = true;
        cfg.minChainLen = min_len;
        FusionStats st;
        auto groups = fuseGraph(g, cfg, &st);
        ASSERT_EQ(groups.size(), 1u);
        EXPECT_EQ(groups[0].nodeIds.size(), 1u);
        EXPECT_FALSE(groups[0].fused);
        EXPECT_EQ(st.fusedNonGemm, 0) << "minChainLen " << min_len;
    }
}

TEST(FusionStatsTest, FusedWithGemmNeverOvercountsFusedNonGemm)
{
    // A GEMM-headed epilogue chain AND a detached point-wise chain:
    // only the epilogue members may count as fusedWithGemm.
    Graph g;
    GraphBuilder b(g);
    Value x = b.input(Shape{4, 16});
    Value h = b.relu(b.linear(x, 16, true, "fc"));
    b.output(h);
    Value y = b.input(Shape{64});
    Value t = b.tanh(b.sigmoid(y));
    b.output(t);

    FusionStats st;
    fuseGraph(g, executableFusionConfig(), &st);
    EXPECT_EQ(st.fusedWithGemm, 1);  // the relu only
    EXPECT_EQ(st.fusedNonGemm, 3);   // relu + sigmoid + tanh
    EXPECT_LE(st.fusedWithGemm, st.fusedNonGemm);
    EXPECT_LE(st.fusedNonGemm, st.totalNonGemm);
}

// ---- descriptive errors ---------------------------------------------------

TEST(FusionErrorTest, EmptyFusedBodyThrowsDescriptively)
{
    Graph g;
    GraphBuilder b(g);
    Value x = b.input(Shape{8});
    Node f;
    f.kind = OpKind::Fused;
    f.name = "hollow";
    f.inputs = {x};
    f.outShapes = {Shape{8}};
    f.outDtypes = {DType::F32};
    int fid = g.addNode(std::move(f));
    g.markOutput(Value{fid, 0});

    // validate flags it...
    ValidationResult vr = validateGraph(g);
    EXPECT_FALSE(vr.ok());
    EXPECT_NE(formatIssues(vr).find("fusedBody"), std::string::npos);

    // ...and execution refuses it with a message naming the group.
    Executor ex(g, referenceBackend());
    try {
        ex.run(makeRequestInputs(g, 1));
        FAIL() << "expected empty fusedBody to throw";
    } catch (const std::runtime_error &e) {
        std::string msg = e.what();
        EXPECT_NE(msg.find("hollow"), std::string::npos) << msg;
        EXPECT_NE(msg.find("fusedBody"), std::string::npos) << msg;
    }
}

TEST(FusionErrorTest, UnfoldableMemberNamesOpAndChain)
{
    Graph g;
    GraphBuilder b(g);
    Value x = b.input(Shape{16});
    Value v = b.relu(x);
    b.output(b.tanh(v));
    FusionConfig cfg;
    cfg.fusePointwiseChains = true;
    Graph fused = applyFusion(g, cfg);

    // A backend that can dispatch Fused nodes but has no kernel for
    // any member op: folding must fail with a descriptive error
    // naming both the chain and the member, not UB.
    Backend lone("lone");
    lone.registerKernel(OpKind::Fused, [&lone](const KernelContext &c) {
        return evalFusedChain(c, lone);
    });
    Executor ex(fused, lone);
    try {
        ex.run(makeRequestInputs(fused, 3));
        FAIL() << "expected unfoldable member to throw";
    } catch (const std::runtime_error &e) {
        std::string msg = e.what();
        EXPECT_NE(msg.find("cannot fold"), std::string::npos) << msg;
        EXPECT_NE(msg.find("relu"), std::string::npos) << msg;
        EXPECT_NE(msg.find("lone"), std::string::npos) << msg;
    }
}

// ---- serve: engines compile with fusion, cache keys on it -----------------

TEST(FusionServeTest, EngineCacheKeysOnFuseAndServesIdentically)
{
    ThreadPool pool(2);
    serve::EngineConfig plain;
    plain.scale = 16;
    plain.fuse = false;
    serve::EngineConfig fusing = plain;
    fusing.fuse = true;

    serve::EngineCache cache_plain(pool, plain);
    serve::EngineCache cache_fused(pool, fusing);

    serve::Engine &e0 = cache_plain.get("vit_b");
    serve::Engine &e1 = cache_fused.get("vit_b");
    EXPECT_NE(&e0, &e1);

    bool has_fused_node = false;
    for (const Node &n : e1.graph().nodes())
        has_fused_node = has_fused_node || n.kind == OpKind::Fused;
    EXPECT_TRUE(has_fused_node);
    EXPECT_LT(e1.graph().size(), e0.graph().size());

    std::vector<std::vector<Tensor>> req = {
        makeRequestInputs(e0.graph(), 9)};
    auto a = e0.run(req);
    auto c = e1.run(req);
    // vit_b has no convs feeding BN, so fused serving is bit-identical
    // even under the default backend; at minimum it must be within
    // tolerance of the unfused engine.
    EXPECT_EQ(closeDifference(c[0], a[0]), "");

    // Each engine reproduces its own serial executor bit-for-bit.
    Executor s1(e1.graph(), e1.backend());
    EXPECT_EQ(bitDifference(c[0], s1.run(req[0])), "");
}

}  // namespace
}  // namespace ngb
