#include <gtest/gtest.h>

#include <sstream>

#include "core/bench.h"
#include "profiler/profile_report.h"

namespace ngb {
namespace {

ProfileReport
sampleReport()
{
    BenchConfig c;
    c.model = "gpt2";
    c.testScale = 4;
    return Bench::run(c);
}

TEST(ReportTest, TopOpsSortedDescending)
{
    ProfileReport r = sampleReport();
    auto top = r.topOps(5);
    ASSERT_LE(top.size(), 5u);
    for (size_t i = 1; i < top.size(); ++i)
        EXPECT_GE(top[i - 1].us, top[i].us);
}

TEST(ReportTest, TopOpsHandlesOversizedRequest)
{
    ProfileReport r = sampleReport();
    auto top = r.topOps(1 << 20);
    EXPECT_EQ(top.size(), r.ops.size());
}

TEST(ReportTest, DominantExcludesGemm)
{
    ProfileReport r = sampleReport();
    EXPECT_NE(r.dominantNonGemmCategory(), OpCategory::Gemm);
}

TEST(ReportTest, OpCsvHasHeaderAndRows)
{
    ProfileReport r = sampleReport();
    std::ostringstream os;
    writeOpCsv(r, os);
    std::string s = os.str();
    EXPECT_NE(s.find("label,category,on_gpu"), std::string::npos);
    size_t rows = std::count(s.begin(), s.end(), '\n');
    EXPECT_EQ(rows, r.ops.size() + 1);
}

TEST(ReportTest, CategoryCsvPercentsSumToHundred)
{
    ProfileReport r = sampleReport();
    std::ostringstream os;
    writeCategoryCsv(r, os);
    std::istringstream is(os.str());
    std::string line;
    std::getline(is, line);  // header
    double total = 0;
    while (std::getline(is, line)) {
        size_t c1 = line.find(',');
        size_t c2 = line.find(',', c1 + 1);
        size_t c3 = line.find(',', c2 + 1);
        total += std::stod(line.substr(c2 + 1, c3 - c2 - 1));
    }
    EXPECT_NEAR(total, 100.0, 0.1);
}

TEST(ReportTest, PrintReportMentionsModelAndCategories)
{
    ProfileReport r = sampleReport();
    std::ostringstream os;
    printReport(r, os);
    std::string s = os.str();
    EXPECT_NE(s.find("gpt2"), std::string::npos);
    EXPECT_NE(s.find("GEMM"), std::string::npos);
    EXPECT_NE(s.find("Activation"), std::string::npos);
    EXPECT_NE(s.find("energy"), std::string::npos);
}

TEST(ReportTest, OpsCarryKernelCounts)
{
    ProfileReport r = sampleReport();
    bool composite = false;
    for (const OpProfile &op : r.ops)
        composite |= op.kernelCount > 1;
    EXPECT_TRUE(composite);  // gpt2's GELU launches 8 kernels
}

TEST(ReportTest, CategoryPctZeroForAbsentCategory)
{
    ProfileReport r = sampleReport();
    // gpt2 has no RoI selection ops.
    EXPECT_EQ(r.categoryPct(OpCategory::RoiSelection), 0.0);
}

}  // namespace
}  // namespace ngb
