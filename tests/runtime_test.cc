#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstring>
#include <set>
#include <stdexcept>

#include "graph/builder.h"
#include "graph/executor.h"
#include "graph/schedule.h"
#include "models/registry.h"
#include "platform/cost_model.h"
#include "deploy/flow.h"
#include "runtime/batch_driver.h"
#include "runtime/memory_planner.h"
#include "runtime/parallel_executor.h"
#include "runtime/request_util.h"
#include "runtime/thread_pool.h"

namespace ngb {
namespace {

// ---- helpers --------------------------------------------------------------

std::vector<Tensor>
makeInputs(const Graph &g, uint64_t seed)
{
    return makeRequestInputs(g, seed);
}

::testing::AssertionResult
outputsBitIdentical(const std::vector<Tensor> &a,
                    const std::vector<Tensor> &b)
{
    std::string diff = bitDifference(a, b);
    if (diff.empty())
        return ::testing::AssertionSuccess();
    return ::testing::AssertionFailure() << diff;
}

Graph
tinyResidualGraph()
{
    Graph g;
    GraphBuilder b(g);
    Value x = b.input(Shape{1, 4, 16});
    Value h = b.layerNorm(x);
    h = b.linear(h, 16, true, "fc");
    h = b.gelu(h);
    b.output(b.add(x, h));
    return g;
}

// ---- Schedule -------------------------------------------------------------

TEST(ScheduleTest, SerialScheduleIsTopologicalOrder)
{
    Graph g = tinyResidualGraph();
    Schedule s = Schedule::serial(g);
    EXPECT_EQ(s.kind(), Schedule::Kind::Serial);
    EXPECT_EQ(s.numLevels(), g.size());
    for (size_t i = 0; i < g.size(); ++i)
        EXPECT_EQ(s.order()[i], static_cast<int>(i));
}

TEST(ScheduleTest, WavefrontLevelsRespectDependencies)
{
    Graph g = models::findModel("swin_t").build(
        ModelConfig{1, 8, false, 0, 8});
    Schedule s = Schedule::wavefront(g);
    for (const Node &n : g.nodes())
        for (const Value &v : n.inputs)
            EXPECT_LT(s.levelOf(v.node), s.levelOf(n.id));
    // Every node appears exactly once across the levels.
    std::set<int> seen;
    for (const auto &lvl : s.levels())
        for (int id : lvl)
            EXPECT_TRUE(seen.insert(id).second);
    EXPECT_EQ(seen.size(), g.size());
    // Parallelism exists: fewer levels than nodes.
    EXPECT_LT(s.numLevels(), g.size());
    EXPECT_GT(s.stats().maxWidth, 1u);
}

TEST(ScheduleTest, ExecutorAcceptsPluggedWavefrontSchedule)
{
    Graph g = tinyResidualGraph();
    Tensor in = Tensor::randn(Shape{1, 4, 16}, 42);
    Executor ref(g);
    Executor wave(g, Schedule::wavefront(g));
    EXPECT_TRUE(outputsBitIdentical(ref.run({in}), wave.run({in})));
}

// ---- ThreadPool -----------------------------------------------------------

TEST(ThreadPoolTest, ExecutesEveryIndexExactlyOnce)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.threads(), 4);
    std::vector<std::atomic<int>> hits(257);
    pool.parallelFor(hits.size(), [&](size_t i, int) { ++hits[i]; });
    for (const auto &h : hits)
        EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, SingleThreadPoolDegradesToSerial)
{
    ThreadPool pool(1);
    std::vector<int> order;
    pool.parallelFor(8, [&](size_t i, int w) {
        EXPECT_EQ(w, 0);
        order.push_back(static_cast<int>(i));
    });
    ASSERT_EQ(order.size(), 8u);
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(ThreadPoolTest, TaskExceptionPropagatesWithoutDeadlock)
{
    ThreadPool pool(4);
    EXPECT_THROW(pool.parallelFor(64,
                                  [&](size_t i, int) {
                                      if (i == 13)
                                          throw std::runtime_error("boom");
                                  }),
                 std::runtime_error);
    // Pool is still usable afterwards.
    std::atomic<int> n{0};
    pool.parallelFor(32, [&](size_t, int) { ++n; });
    EXPECT_EQ(n.load(), 32);
}

TEST(ThreadPoolTest, ZeroAndNegativeRequestsResolveToAtLeastOneWorker)
{
    // Regression: --threads 0 (and hosts where hardware_concurrency()
    // returns 0) must yield a working pool, never an empty one.
    EXPECT_GE(resolveThreads(0), 1);
    EXPECT_GE(resolveThreads(-4), 1);
    EXPECT_EQ(resolveThreads(3), 3);

    for (int requested : {0, -2}) {
        ThreadPool pool(requested);
        EXPECT_GE(pool.threads(), 1);
        std::atomic<int> n{0};
        pool.parallelFor(16, [&](size_t, int) { ++n; });
        EXPECT_EQ(n.load(), 16);
    }
}

TEST(ThreadPoolTest, StatsAccountForAllTasks)
{
    ThreadPool pool(3);
    pool.drainStats();
    pool.parallelFor(100, [&](size_t, int) {});
    int64_t tasks = 0;
    for (const auto &ws : pool.drainStats())
        tasks += ws.tasks;
    EXPECT_EQ(tasks, 100);
}

// ---- MemoryPlanner --------------------------------------------------------

class PlannerAllModels : public ::testing::TestWithParam<std::string>
{
};

TEST_P(PlannerAllModels, NeverAliasesLiveTensorsAndReusesMemory)
{
    const auto &info = models::findModel(GetParam());
    ModelConfig cfg;
    cfg.batch = 1;
    cfg.seqLen = 8;
    cfg.testScale = 8;
    Graph g = info.build(cfg);
    Schedule s = Schedule::wavefront(g);
    MemoryPlan plan = planMemory(g, s);

    ASSERT_FALSE(plan.placements.empty()) << info.name;
    // Lifetime-overlap assertion: no two concurrently live tensors may
    // share arena bytes.
    EXPECT_TRUE(verifyNoAliasing(plan)) << info.name;
    // Reuse actually happens: peak arena <= no-reuse footprint.
    EXPECT_LE(plan.arenaBytes, plan.totalBytes) << info.name;
    // Sanity: every placement fits inside the arena.
    for (const TensorPlacement &p : plan.placements) {
        EXPECT_GE(p.offset, 0) << info.name;
        EXPECT_LE(p.offset + p.bytes, plan.arenaBytes) << info.name;
        EXPECT_LE(p.firstLevel, p.lastLevel) << info.name;
    }
}

INSTANTIATE_TEST_SUITE_P(AllRegistryModels, PlannerAllModels,
                         ::testing::ValuesIn([] {
                             std::vector<std::string> names;
                             for (const auto &m : models::modelRegistry())
                                 names.push_back(m.name);
                             return names;
                         }()));

TEST(MemoryPlannerTest, SequentialChainReusesBuffers)
{
    // A long elementwise chain: only ~2 tensors are ever live, so the
    // arena must be far below the no-reuse sum.
    Graph g;
    GraphBuilder b(g);
    Value x = b.input(Shape{64, 64});
    Value h = x;
    for (int i = 0; i < 16; ++i)
        h = b.relu(h);
    b.output(h);
    MemoryPlan plan = planMemory(g, Schedule::wavefront(g));
    EXPECT_TRUE(verifyNoAliasing(plan));
    EXPECT_GE(plan.reuseFactor(), 4.0);
}

TEST(MemoryPlannerTest, EmptyGraphPlansNothing)
{
    Graph g;
    MemoryPlan plan = planMemory(g, Schedule::wavefront(g));
    EXPECT_TRUE(plan.placements.empty());
    EXPECT_EQ(plan.arenaBytes, 0);
    EXPECT_EQ(plan.totalBytes, 0);
    EXPECT_TRUE(verifyNoAliasing(plan));
}

TEST(MemoryPlannerTest, SingleNodeGraphsPlanOnlyComputedTensors)
{
    // Input-only graph: the sole tensor is caller-owned, nothing to plan.
    Graph g;
    GraphBuilder b(g);
    b.output(b.input(Shape{4}));
    MemoryPlan plan = planMemory(g, Schedule::wavefront(g));
    EXPECT_TRUE(plan.placements.empty());
    EXPECT_EQ(plan.arenaBytes, 0);
    EXPECT_TRUE(verifyNoAliasing(plan));

    // One compute node: exactly its output is planned, and the arena
    // is exactly that (aligned) tensor.
    Graph g2;
    GraphBuilder b2(g2);
    b2.output(b2.relu(b2.input(Shape{8, 8})));
    MemoryPlan plan2 = planMemory(g2, Schedule::wavefront(g2));
    ASSERT_EQ(plan2.placements.size(), 1u);
    EXPECT_EQ(plan2.arenaBytes, plan2.totalBytes);
    EXPECT_EQ(plan2.arenaBytes, plan2.placements[0].bytes);
    EXPECT_TRUE(verifyNoAliasing(plan2));
}

TEST(MemoryPlannerTest, AllTensorsLiveToEndForbidReuse)
{
    // Every computed tensor is a graph output, so all lifetimes extend
    // to the last level: peak must equal the no-reuse footprint.
    Graph g;
    GraphBuilder b(g);
    Value x = b.input(Shape{32, 32});
    for (int i = 0; i < 6; ++i)
        b.output(b.relu(x));
    MemoryPlan plan = planMemory(g, Schedule::wavefront(g));
    ASSERT_EQ(plan.placements.size(), 6u);
    EXPECT_TRUE(verifyNoAliasing(plan));
    EXPECT_EQ(plan.arenaBytes, plan.totalBytes);
}

TEST(MemoryPlannerTest, FragmentationProneLifetimesStillPackSafely)
{
    // Alternating wide/narrow activations plus a pinned early output —
    // the hole-punching pattern that fragments naive first-fit
    // allocators. The planner must stay alias-free and no worse than
    // the no-reuse footprint while still reusing the wide slots.
    Graph g;
    GraphBuilder b(g);
    Value x = b.input(Shape{1, 4, 16});
    Value pinned = b.linear(x, 256, false, "pin");
    b.output(pinned);  // lives to the end, mid-arena
    Value h = x;
    for (int i = 0; i < 6; ++i) {
        h = b.linear(h, 256, false, "wide" + std::to_string(i));
        h = b.linear(h, 8, false, "narrow" + std::to_string(i));
    }
    b.output(b.add(b.linear(h, 256, false, "up"), pinned));
    MemoryPlan plan = planMemory(g, Schedule::wavefront(g));
    EXPECT_TRUE(verifyNoAliasing(plan));
    EXPECT_LE(plan.arenaBytes, plan.totalBytes);
    // The six wide intermediates die quickly; reuse must pay off.
    EXPECT_GE(plan.reuseFactor(), 2.0);
}

TEST(MemoryPlannerTest, GraphOutputsStayLiveToTheEnd)
{
    Graph g;
    GraphBuilder b(g);
    Value x = b.input(Shape{8});
    Value early = b.relu(x);   // graph output produced early
    b.output(early);
    Value h = b.gelu(x);
    h = b.silu(h);
    b.output(h);
    Schedule s = Schedule::wavefront(g);
    MemoryPlan plan = planMemory(g, s);
    const TensorPlacement *p = plan.find({early.node, 0});
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(p->lastLevel, static_cast<int>(s.numLevels()) - 1);
}

// ---- ParallelExecutor: bit-identical to the serial Executor ---------------

class RuntimeAllModels : public ::testing::TestWithParam<std::string>
{
};

TEST_P(RuntimeAllModels, ParallelOutputsBitIdenticalToSerial)
{
    const auto &info = models::findModel(GetParam());
    ModelConfig cfg;
    cfg.batch = 1;
    cfg.seqLen = 8;
    cfg.testScale = 8;
    Graph g = info.build(cfg);
    std::vector<Tensor> inputs = makeInputs(g, 1234);

    Executor serial(g);
    std::vector<Tensor> want = serial.run(inputs);

    ThreadPool pool(4);
    ParallelExecutor parallel(g, pool);
    std::vector<Tensor> got = parallel.run(inputs);
    EXPECT_TRUE(outputsBitIdentical(want, got)) << info.name;

    const RuntimeProfile &p = parallel.profile();
    EXPECT_EQ(p.threads, 4);
    EXPECT_GT(p.wallUs, 0);
    EXPECT_GT(p.sumUs, 0);
    EXPECT_EQ(p.levels.size(), parallel.schedule().numLevels());
    EXPECT_EQ(p.threadBusyUs.size(), 4u);
}

INSTANTIATE_TEST_SUITE_P(AllRegistryModels, RuntimeAllModels,
                         ::testing::ValuesIn([] {
                             std::vector<std::string> names;
                             for (const auto &m : models::modelRegistry())
                                 names.push_back(m.name);
                             return names;
                         }()));

TEST(ParallelExecutorTest, RepeatedRunsAreDeterministic)
{
    Graph g = models::findModel("gpt2").build(ModelConfig{1, 8, false, 0, 8});
    std::vector<Tensor> inputs = makeInputs(g, 7);
    ThreadPool pool(4);
    ParallelExecutor ex(g, pool);
    std::vector<Tensor> first = ex.run(inputs);
    for (int i = 0; i < 3; ++i)
        EXPECT_TRUE(outputsBitIdentical(first, ex.run(inputs)));
}

// ---- BatchDriver ----------------------------------------------------------

TEST(BatchDriverTest, EveryRequestMatchesSerialReference)
{
    Graph g = models::findModel("vit_b").build(ModelConfig{1, 8, false, 0, 8});
    std::vector<std::vector<Tensor>> reqs;
    for (size_t r = 0; r < 6; ++r)
        reqs.push_back(makeInputs(g, 100 + r));

    ThreadPool pool(3);
    BatchDriver driver(g, pool);
    std::vector<std::vector<Tensor>> outs = driver.run(reqs);
    ASSERT_EQ(outs.size(), reqs.size());

    Executor serial(g);
    for (size_t r = 0; r < reqs.size(); ++r)
        EXPECT_TRUE(outputsBitIdentical(serial.run(reqs[r]), outs[r]))
            << "request " << r;

    const RuntimeProfile &p = driver.profile();
    EXPECT_EQ(p.requests, 6);
    EXPECT_GT(p.planUs, 0);
    EXPECT_TRUE(verifyNoAliasing(driver.memoryPlan()));
}

TEST(BatchDriverTest, IdenticalRequestsProduceIdenticalOutputs)
{
    Graph g = models::findModel("segformer")
                  .build(ModelConfig{1, 8, false, 0, 8});
    std::vector<std::vector<Tensor>> reqs(4, makeInputs(g, 55));
    ThreadPool pool(4);
    BatchDriver driver(g, pool);
    auto outs = driver.run(reqs);
    for (size_t r = 1; r < outs.size(); ++r)
        EXPECT_TRUE(outputsBitIdentical(outs[0], outs[r]));
}

TEST(BatchDriverTest, RejectsMalformedRequest)
{
    Graph g = tinyResidualGraph();
    ThreadPool pool(2);
    BatchDriver driver(g, pool);
    std::vector<std::vector<Tensor>> reqs = {
        {Tensor::zeros(Shape{1, 4, 16})},
        {Tensor::zeros(Shape{2, 4, 16})},  // wrong shape
    };
    EXPECT_THROW(driver.run(reqs), std::runtime_error);
}

// ---- CostModel critical path ----------------------------------------------

TEST(CriticalPathTest, BoundedByMaxGroupAndSerialSum)
{
    Graph g = models::findModel("vit_b").build(ModelConfig{1, 8, false, 0, 1});
    auto flow = makeFlow("pytorch");
    ExecutionPlan plan = flow->plan(g, FlowOptions{});
    CostModel cm(platformById("A"));

    double serial = cm.latencyUs(plan);
    double path = cm.criticalPathUs(plan);
    EXPECT_GT(path, 0);
    EXPECT_LE(path, serial + 1e-6);

    double max_group = 0;
    for (const KernelGroup &kg : plan.groups)
        max_group = std::max(max_group, cm.price(kg).totalUs());
    EXPECT_GE(path + 1e-6, max_group);
}

TEST(CriticalPathTest, ParallelGraphHasShorterCriticalPath)
{
    // Two independent heavy branches: the critical path must be well
    // below the serial sum.
    Graph g;
    GraphBuilder b(g);
    Value x = b.input(Shape{1, 64, 64});
    Value a = b.linear(x, 64, true, "a");
    Value c = b.linear(x, 64, true, "c");
    b.output(b.add(a, c));
    auto flow = makeFlow("pytorch");
    ExecutionPlan plan = flow->plan(g, FlowOptions{});
    CostModel cm(platformById("A"));
    EXPECT_LT(cm.criticalPathUs(plan), cm.latencyUs(plan));
}

}  // namespace
}  // namespace ngb
