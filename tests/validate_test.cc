#include <gtest/gtest.h>

#include <sstream>

#include "core/bench.h"
#include "graph/builder.h"
#include "graph/dot_export.h"
#include "graph/validate.h"
#include "models/registry.h"
#include "platform/cost_model.h"
#include "deploy/flow.h"

namespace ngb {
namespace {

TEST(ValidateTest, CleanGraphPasses)
{
    Graph g;
    GraphBuilder b(g);
    Value x = b.input(Shape{4});
    b.output(b.relu(x));
    ValidationResult r = validateGraph(g);
    EXPECT_TRUE(r.ok()) << formatIssues(r);
    EXPECT_EQ(r.errorCount(), 0u);
}

TEST(ValidateTest, EveryRegistryModelValidates)
{
    for (const auto &info : models::modelRegistry()) {
        ModelConfig cfg;
        cfg.seqLen = info.defaultSeqLen > 0 ? info.defaultSeqLen : 8;
        Graph g = info.build(cfg);
        ValidationResult r = validateGraph(g);
        EXPECT_TRUE(r.ok()) << info.name << ":\n" << formatIssues(r);
    }
}

TEST(ValidateTest, DetectsForwardReference)
{
    Graph g;
    GraphBuilder b(g);
    Value x = b.input(Shape{4});
    Value y = b.relu(x);
    // Corrupt: make relu depend on a later node id.
    g.node(y.node).inputs[0].node = y.node + 5;
    ValidationResult r = validateGraph(g);
    EXPECT_FALSE(r.ok());
}

TEST(ValidateTest, DetectsBadOutputIndex)
{
    Graph g;
    GraphBuilder b(g);
    Value x = b.input(Shape{8});
    auto parts = b.split(x, 4, 0);
    Value y = b.relu(parts[0]);
    g.node(y.node).inputs[0].index = 9;
    ValidationResult r = validateGraph(g);
    EXPECT_FALSE(r.ok());
    EXPECT_NE(formatIssues(r).find("out of range"), std::string::npos);
}

TEST(ValidateTest, WarnsOnDeadCode)
{
    Graph g;
    GraphBuilder b(g);
    Value x = b.input(Shape{4});
    Value used = b.relu(x);
    b.tanh(x);  // dead
    b.output(used);
    ValidationResult r = validateGraph(g);
    EXPECT_TRUE(r.ok());  // warning only
    EXPECT_GE(r.warningCount(), 1u);
    EXPECT_NE(formatIssues(r).find("never consumed"), std::string::npos);
}

TEST(ValidateTest, WarnsOnMissingOutputs)
{
    Graph g;
    GraphBuilder b(g);
    Value x = b.input(Shape{4});
    b.relu(x);
    ValidationResult r = validateGraph(g);
    EXPECT_GE(r.warningCount(), 1u);
}

TEST(DotExportTest, EmitsNodesEdgesAndColors)
{
    Graph g;
    g.setName("dot-test");
    GraphBuilder b(g);
    Value x = b.input(Shape{1, 4, 8});
    Value h = b.layerNorm(x);
    h = b.linear(h, 8, true, "fc");
    h = b.gelu(h);
    b.output(h);

    std::ostringstream os;
    writeDot(g, DotOptions(), os);
    std::string s = os.str();
    EXPECT_EQ(s.find("digraph"), 0u);
    EXPECT_NE(s.find("layer_norm"), std::string::npos);
    EXPECT_NE(s.find("linear"), std::string::npos);
    EXPECT_NE(s.find("->"), std::string::npos);
    EXPECT_NE(s.find("[1, 4, 8]"), std::string::npos);  // edge shape
    EXPECT_NE(s.find("fillcolor"), std::string::npos);
}

TEST(DotExportTest, HideZeroCopyCollapsesChains)
{
    Graph g;
    GraphBuilder b(g);
    Value x = b.input(Shape{2, 8});
    Value v = b.view(x, Shape{8, 2});
    v = b.transpose(v, 0, 1);
    Value y = b.relu(v);
    b.output(y);

    DotOptions opts;
    opts.hideZeroCopy = true;
    std::ostringstream os;
    writeDot(g, opts, os);
    std::string s = os.str();
    EXPECT_EQ(s.find("\"view\""), std::string::npos);
    EXPECT_NE(s.find("relu"), std::string::npos);
    // relu's edge resolves through the hidden chain to the input.
    EXPECT_NE(s.find("n0 -> n3"), std::string::npos);
}

TEST(JsonReportTest, WellFormedAndComplete)
{
    BenchConfig c;
    c.model = "gpt2";
    c.testScale = 4;
    ProfileReport r = Bench::run(c);
    std::ostringstream os;
    writeJsonReport(r, os);
    std::string s = os.str();
    int depth = 0;
    for (char ch : s) {
        if (ch == '{' || ch == '[')
            ++depth;
        if (ch == '}' || ch == ']')
            --depth;
        ASSERT_GE(depth, 0);
    }
    EXPECT_EQ(depth, 0);
    EXPECT_NE(s.find("\"model\": \"gpt2\""), std::string::npos);
    EXPECT_NE(s.find("\"categories\""), std::string::npos);
    EXPECT_NE(s.find("\"ops\""), std::string::npos);
    EXPECT_NE(s.find("\"fusion\""), std::string::npos);
}

TEST(AsyncDispatchTest, OverlapNeverSlower)
{
    for (const char *m : {"gpt2", "swin_t", "detr"}) {
        const auto &info = models::findModel(m);
        ModelConfig mc;
        mc.seqLen = info.defaultSeqLen > 0 ? info.defaultSeqLen : 8;
        Graph g = info.build(mc);
        auto plan = makePyTorchFlow()->plan(g, {true, false});

        CostModelParams serial;
        CostModelParams overlap;
        overlap.asyncDispatch = true;
        double ts = CostModel(platformA(), serial).latencyUs(plan);
        double to = CostModel(platformA(), overlap).latencyUs(plan);
        EXPECT_LE(to, ts) << m;
        EXPECT_GT(to, 0.3 * ts) << m;  // bounded benefit
    }
}

TEST(AsyncDispatchTest, SyncPointsLimitOverlap)
{
    // A plan with a sync-forcing group in the middle overlaps less
    // than the same plan without it.
    ExecutionPlan with_sync, without;
    for (int i = 0; i < 10; ++i) {
        KernelGroup g;
        g.category = OpCategory::ElementWise;
        g.onGpu = true;
        g.flops = 1e8;
        g.bytesIn = g.bytesOut = 1e7;
        if (i == 5)
            g.hostSyncs = with_sync.groups.empty() ? 0 : 1;
        without.groups.push_back(g);
        if (i == 5)
            g.hostSyncs = 1;
        with_sync.groups.push_back(g);
    }
    CostModelParams p;
    p.asyncDispatch = true;
    CostModel cm(platformA(), p);
    EXPECT_GE(cm.latencyUs(with_sync), cm.latencyUs(without));
}

}  // namespace
}  // namespace ngb
