#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "graph/executor.h"
#include "models/registry.h"

namespace ngb {
namespace {

using models::ModelInfo;
using models::modelRegistry;

int64_t
countKind(const Graph &g, OpKind k)
{
    int64_t n = 0;
    for (const Node &node : g.nodes())
        n += node.kind == k;
    return n;
}

TEST(RegistryTest, SeventeenPaperModelsPlusExtensions)
{
    EXPECT_EQ(models::paperModelNames().size(), 17u);
    // 17 paper models + the Llama3 quantization subject + extensions.
    EXPECT_GE(modelRegistry().size(), 19u);
    EXPECT_NO_THROW(models::findModel("swin_b"));
    EXPECT_NO_THROW(models::findModel("resnet50"));
    EXPECT_THROW(models::findModel("resnet18"), std::runtime_error);
}

TEST(RegistryTest, TaskDomainsMatchTableII)
{
    std::map<std::string, int> tasks;
    for (const std::string &name : models::paperModelNames())
        ++tasks[models::findModel(name).task];
    EXPECT_EQ(tasks["IC"], 6);
    EXPECT_EQ(tasks["OD"], 3);
    EXPECT_EQ(tasks["IS"], 2);
    EXPECT_EQ(tasks["NLP"], 6);
}

class BuildAllModels : public ::testing::TestWithParam<std::string>
{
};

TEST_P(BuildAllModels, PaperScaleGraphIsWellFormed)
{
    const ModelInfo &info = models::findModel(GetParam());
    ModelConfig cfg;
    cfg.batch = 1;
    cfg.seqLen = info.defaultSeqLen > 0 ? info.defaultSeqLen : 8;
    Graph g = info.build(cfg);

    GraphStats s = g.stats();
    EXPECT_GT(s.numGemmOps, 0);
    EXPECT_GT(s.numNonGemmOps, s.numGemmOps);  // non-GEMM ops dominate counts
    EXPECT_GT(s.totalFlops, 0);
    EXPECT_FALSE(g.graphOutputs().empty());

    // Topological well-formedness.
    for (const Node &n : g.nodes())
        for (const Value &v : n.inputs)
            EXPECT_LT(v.node, n.id);
}

TEST_P(BuildAllModels, BatchScalesActivationsNotParams)
{
    const ModelInfo &info = models::findModel(GetParam());
    ModelConfig c1, c8;
    c1.batch = 1;
    c8.batch = 8;
    c1.seqLen = c8.seqLen = info.defaultSeqLen > 0 ? info.defaultSeqLen : 8;
    Graph g1 = info.build(c1);
    Graph g8 = info.build(c8);
    EXPECT_EQ(g1.stats().totalParams, g8.stats().totalParams);
    // Detection heads work on a fixed proposal budget and MoE experts
    // on a fixed token share, so growth is sublinear there; every
    // model must still grow substantially with batch.
    EXPECT_GT(g8.stats().totalFlops, 1.5 * g1.stats().totalFlops);
}

INSTANTIATE_TEST_SUITE_P(
    AllModels, BuildAllModels,
    ::testing::Values("vit_b", "vit_l", "vit_h", "swin_t", "swin_s",
                      "swin_b", "faster_rcnn", "mask_rcnn", "detr",
                      "maskformer", "segformer", "gpt2", "gpt2_l",
                      "gpt2_xl", "llama2", "bert", "mixtral", "llama3"));

TEST(ModelParamsTest, ParameterCountsMatchPublishedSizes)
{
    // name -> (expected millions, tolerance fraction)
    struct Want {
        const char *name;
        double millions;
        double tol;
    };
    // GPT-2 sizes include the untied lm_head projection.
    const Want wants[] = {
        {"vit_b", 86, 0.10},      {"vit_h", 632, 0.10},
        {"swin_t", 28, 0.10},     {"swin_b", 88, 0.10},
        {"detr", 41, 0.10},       {"segformer", 3.7, 0.15},
        {"bert", 110, 0.10},      {"llama2", 6740, 0.05},
        {"llama3", 8030, 0.05},
    };
    for (const Want &w : wants) {
        const ModelInfo &info = models::findModel(w.name);
        ModelConfig cfg;
        cfg.seqLen = info.defaultSeqLen > 0 ? info.defaultSeqLen : 8;
        double m = static_cast<double>(info.build(cfg).stats().totalParams) /
                   1e6;
        EXPECT_NEAR(m, w.millions, w.millions * w.tol) << w.name;
    }
}

TEST(ModelOpsTest, TableIOperatorsPresent)
{
    ModelConfig cfg;
    cfg.seqLen = 10;

    Graph detr = models::findModel("detr").build(cfg);
    EXPECT_GT(countKind(detr, OpKind::FrozenBatchNorm2d), 0);
    EXPECT_GT(countKind(detr, OpKind::ReLU), 0);
    EXPECT_GT(countKind(detr, OpKind::LayerNorm), 0);
    EXPECT_GT(countKind(detr, OpKind::Softmax), 0);

    Graph mrcnn = models::findModel("mask_rcnn").build(cfg);
    EXPECT_GT(countKind(mrcnn, OpKind::NMS), 0);
    EXPECT_GT(countKind(mrcnn, OpKind::RoIAlign), 0);

    Graph seg = models::findModel("segformer").build(cfg);
    EXPECT_GT(countKind(seg, OpKind::Interpolate), 0);
    EXPECT_GT(countKind(seg, OpKind::BatchNorm2d), 0);
    EXPECT_GT(countKind(seg, OpKind::LayerNorm), 0);

    cfg.seqLen = 10;
    Graph llama = models::findModel("llama2").build(cfg);
    EXPECT_GT(countKind(llama, OpKind::RMSNorm), 0);
    EXPECT_GT(countKind(llama, OpKind::SiLU), 0);
    EXPECT_GT(countKind(llama, OpKind::Neg), 0);       // rotate_half
    EXPECT_GT(countKind(llama, OpKind::Contiguous), 0);

    cfg.seqLen = 8;
    Graph gpt2 = models::findModel("gpt2_xl").build(cfg);
    EXPECT_GT(countKind(gpt2, OpKind::GELU), 0);
    EXPECT_GT(countKind(gpt2, OpKind::Split), 0);
    EXPECT_GT(countKind(gpt2, OpKind::View), 0);
    EXPECT_GT(countKind(gpt2, OpKind::Permute), 0);

    Graph swin = models::findModel("swin_b").build(cfg);
    EXPECT_GT(countKind(swin, OpKind::Roll), 0);

    Graph mixtral = models::findModel("mixtral").build(cfg);
    EXPECT_GT(countKind(mixtral, OpKind::TopK), 0);
    EXPECT_GT(countKind(mixtral, OpKind::Gather), 0);
}

TEST(ModelOpsTest, Gpt2GeluIsCompositeKernel)
{
    ModelConfig cfg;
    cfg.seqLen = 8;
    Graph g = models::findModel("gpt2").build(cfg);
    bool found = false;
    for (const Node &n : g.nodes())
        if (n.kind == OpKind::GELU) {
            EXPECT_EQ(n.attrs.getI("kernels", 1), 8);
            found = true;
        }
    EXPECT_TRUE(found);
}

TEST(ModelOpsTest, DetrEncoderTokensMatchPaperShape)
{
    // Table I captures DETR's encoder LayerNorm at [2, 850, 256].
    ModelConfig cfg;
    cfg.batch = 2;
    Graph g = models::findModel("detr").build(cfg);
    bool found = false;
    for (const Node &n : g.nodes())
        if (n.kind == OpKind::LayerNorm &&
            n.outShapes[0] == Shape{2, 850, 256})
            found = true;
    EXPECT_TRUE(found);
}

class ExecuteTinyModels : public ::testing::TestWithParam<std::string>
{
};

TEST_P(ExecuteTinyModels, TestScaleGraphRunsEndToEnd)
{
    const ModelInfo &info = models::findModel(GetParam());
    ModelConfig cfg;
    cfg.batch = 1;
    cfg.seqLen = 8;
    cfg.testScale = 8;
    Graph g = info.build(cfg);

    std::vector<Tensor> inputs;
    for (const Value &v : g.graphInputs()) {
        if (g.dtypeOf(v) == DType::I32) {
            // Token ids: small values, valid for any test vocab.
            Tensor ids(g.shapeOf(v), DType::I32);
            for (int64_t i = 0; i < ids.numel(); ++i)
                ids.flatSet(i, static_cast<float>(i % 7));
            inputs.push_back(ids);
        } else {
            inputs.push_back(Tensor::randn(g.shapeOf(v), 1234, 0.5f));
        }
    }

    Executor ex(g);
    std::vector<Tensor> out;
    ASSERT_NO_THROW(out = ex.run(inputs)) << info.name;
    ASSERT_FALSE(out.empty());
    for (const Tensor &t : out)
        for (int64_t i = 0; i < std::min<int64_t>(t.numel(), 64); ++i)
            ASSERT_TRUE(std::isfinite(t.flatAt(i))) << info.name;
}

INSTANTIATE_TEST_SUITE_P(
    AllModels, ExecuteTinyModels,
    ::testing::Values("vit_b", "swin_t", "faster_rcnn", "mask_rcnn",
                      "detr", "maskformer", "segformer", "gpt2", "bert",
                      "llama2", "llama3", "mixtral"));

}  // namespace
}  // namespace ngb
