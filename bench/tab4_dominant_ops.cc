/**
 * @file
 * Reproduces Table IV: the most time-consuming non-GEMM operator group
 * for every model on Platform A with GPU acceleration, averaged over
 * batch sizes 1 and 8.
 */
#include <cstdio>
#include <map>

#include "bench_util.h"
#include "models/registry.h"

using namespace ngb;

int
main()
{
    std::printf("Table IV: dominant non-GEMM operator group "
                "(Platform A, CPU+GPU, avg of b1/b8)\n");
    bench::printRule(76);
    std::printf("%-6s %-14s %-16s %10s %14s\n", "task", "model",
                "dominant_group", "latency%%", "paper_ref");

    // Paper values for the reader's side-by-side comparison.
    const std::map<std::string, std::string> paper = {
        {"vit_b", "Norm 14.0"},      {"vit_l", "Norm 13.3"},
        {"vit_h", "Norm 11.2"},      {"swin_t", "Mem 31.8"},
        {"swin_s", "Mem 33.1"},      {"swin_b", "Mem 32.8"},
        {"faster_rcnn", "Elt 34.4"}, {"mask_rcnn", "Elt 33.6"},
        {"detr", "Norm 34.8"},       {"maskformer", "Mem 40.8"},
        {"segformer", "Norm 17.4"},  {"gpt2", "Act 30.2"},
        {"gpt2_l", "Act 29.9"},      {"gpt2_xl", "Act 28.1"},
        {"llama2", "Norm 14.9"},     {"bert", "Norm 13.1"},
        {"mixtral", "Mem 43.1"},
    };

    for (const std::string &name : models::paperModelNames()) {
        const auto &info = models::findModel(name);
        std::map<OpCategory, double> pct_sum;
        for (int64_t batch : {1, 8}) {
            BenchConfig c;
            c.model = name;
            c.batch = batch;
            ProfileReport r = Bench::run(c);
            for (const auto &[cat, us] : r.usByCategory) {
                (void)us;
                pct_sum[cat] += r.categoryPct(cat) / 2.0;
            }
        }
        OpCategory best = OpCategory::Misc;
        double best_pct = -1;
        for (const auto &[cat, pct] : pct_sum) {
            if (cat == OpCategory::Gemm)
                continue;
            if (pct > best_pct) {
                best_pct = pct;
                best = cat;
            }
        }
        std::printf("%-6s %-14s %-16s %9.1f%% %14s\n", info.task.c_str(),
                    name.c_str(), opCategoryName(best).c_str(), best_pct,
                    paper.at(name).c_str());
    }
    return 0;
}
