/**
 * @file
 * Reproduces Figure 8 (Case Study 2): the impact of operator fusion —
 * PyTorch (no fusion) vs TorchInductor vs TensorRT on Swin-T, Swin-B,
 * DETR and SegFormer across batch sizes 1/2/4/8.
 *
 * Shape to match: fusion reduces both total latency and the non-GEMM
 * share, most dramatically for DETR (CONV+BN+RELU folding), least for
 * SegFormer — but non-GEMM remains considerable everywhere.
 */
#include <cstdio>

#include "bench_util.h"

using namespace ngb;

int
main()
{
    for (const char *model : {"swin_t", "swin_b", "detr", "segformer"}) {
        std::printf("\nFigure 8: %s (Platform A, CPU+GPU)\n", model);
        bench::printRule(78);
        std::printf("%-12s", "flow");
        for (int b : {1, 2, 4, 8})
            std::printf("   b%-2d total_ms / nonGEMM%%", b);
        std::printf("\n");
        for (const char *flow : {"pytorch", "inductor", "tensorrt"}) {
            std::printf("%-12s", flow);
            for (int64_t b : {1, 2, 4, 8}) {
                BenchConfig c;
                c.model = model;
                c.flow = flow;
                c.batch = b;
                ProfileReport r = Bench::run(c);
                std::printf("   %10.2f / %6.1f%%", r.totalMs(),
                            r.nonGemmPct());
            }
            std::printf("\n");
        }
    }
    std::printf("\nPaper reference (Fig. 8): TensorRT cuts DETR's non-GEMM "
                "share from ~60-66%% to ~15-23%%,\nwhile Swin and SegFormer "
                "keep 30-58%% non-GEMM even after fusion.\n");
    return 0;
}
