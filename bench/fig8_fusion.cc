/**
 * @file
 * Reproduces Figure 8 (Case Study 2): the impact of operator fusion —
 * modeled (PyTorch vs TorchInductor vs TensorRT on Swin-T, Swin-B,
 * DETR and SegFormer across batch sizes 1/2/4/8), and since the
 * executable-fusion rewrite also MEASURED: the same registry graphs
 * run end to end, unfused vs applyFusion'd, under the optimized
 * backend, plus a point-wise-chain micro isolating the single-pass
 * fused loop.
 *
 * Shape to match: fusion reduces both total latency and the non-GEMM
 * share, most dramatically for the CNN-family models (CONV+BN+RELU
 * folding), least for SegFormer — but non-GEMM remains considerable
 * everywhere.
 *
 *   bench_fig8_fusion [--json [FILE]] [--check] [--skip-modeled]
 *
 * --json writes BENCH_fusion.json (modeled + measured). --check exits
 * non-zero unless the point-wise-chain micro clears a minimum
 * measured-speedup bar and at least one CNN-family model reaches the
 * 1.2x end-to-end bar; CI runs it so a fused-path regression cannot
 * ship green. Note the fused CONV groups run through the tiled-GEMM
 * conv core, so their measured win includes kernel-quality gains on
 * top of the BN-elimination / epilogue gains — the same bundling a
 * TensorRT engine build performs.
 */
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "deploy/fusion.h"
#include "graph/builder.h"
#include "graph/executor.h"
#include "models/registry.h"
#include "ops/backend.h"
#include "runtime/request_util.h"

using namespace ngb;

namespace {

double
timedRunMs(const Graph &g, const Backend &backend,
           const std::vector<Tensor> &inputs, int reps)
{
    Executor ex(g, backend);
    ex.run(inputs);  // warm-up: params, packed weights, folded affines
    double best = 1e30;
    for (int r = 0; r < reps; ++r) {
        auto t0 = std::chrono::steady_clock::now();
        ex.run(inputs);
        double ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
        best = ms < best ? ms : best;
    }
    return best;
}

struct MeasuredRow {
    std::string model;
    double unfusedMs = 0;
    double fusedMs = 0;
    double fusionRate = 0;
    int64_t groups = 0;
    double speedup() const
    {
        return fusedMs > 0 ? unfusedMs / fusedMs : 0;
    }
};

MeasuredRow
measureModel(const std::string &name, int reps)
{
    const auto &info = models::findModel(name);
    Graph g = info.build(ModelConfig{1, 8, false, 0, 8});
    FusionStats st;
    Graph fused = applyFusion(g, executableFusionConfig(), &st);

    MeasuredRow row;
    row.model = name;
    row.fusionRate = st.fusionRate();
    row.groups = st.groupsEmitted;
    std::vector<Tensor> inputs = makeRequestInputs(g, 42);
    row.unfusedMs = timedRunMs(g, optimizedBackend(), inputs, reps);
    row.fusedMs = timedRunMs(fused, optimizedBackend(), inputs, reps);
    return row;
}

/**
 * The single-pass point-wise-chain micro: 6 cheap (bandwidth-bound)
 * unary ops over a tensor well past L2, the regime where fusion's
 * memory-traffic elimination dominates — the unfused sweeps stream
 * 4 MiB in and out per op, the fused chain streams it once.
 */
MeasuredRow
measurePointwiseMicro(int reps)
{
    Graph g;
    GraphBuilder b(g);
    Value v = b.input(Shape{1 << 20});
    v = b.mulScalar(v, 1.5);
    v = b.addScalar(v, 0.25);
    v = b.relu(v);
    v = b.mulScalar(v, 2.0);
    v = b.addScalar(v, -0.5);
    v = b.relu(v);
    b.output(v);

    FusionConfig cfg;
    cfg.fusePointwiseChains = true;
    FusionStats st;
    Graph fused = applyFusion(g, cfg, &st);

    MeasuredRow row;
    row.model = "pointwise_chain_micro";
    row.fusionRate = st.fusionRate();
    row.groups = st.groupsEmitted;
    std::vector<Tensor> inputs = makeRequestInputs(g, 7);
    row.unfusedMs = timedRunMs(g, optimizedBackend(), inputs, reps);
    row.fusedMs = timedRunMs(fused, optimizedBackend(), inputs, reps);
    return row;
}

void
printModeled(std::vector<std::string> *jsonRows)
{
    for (const char *model : {"swin_t", "swin_b", "detr", "segformer"}) {
        std::printf("\nFigure 8: %s (Platform A, CPU+GPU, modeled)\n",
                    model);
        bench::printRule(78);
        std::printf("%-12s", "flow");
        for (int b : {1, 2, 4, 8})
            std::printf("   b%-2d total_ms / nonGEMM%%", b);
        std::printf("\n");
        for (const char *flow : {"pytorch", "inductor", "tensorrt"}) {
            std::printf("%-12s", flow);
            for (int64_t b : {1, 2, 4, 8}) {
                BenchConfig c;
                c.model = model;
                c.flow = flow;
                c.batch = b;
                ProfileReport r = Bench::run(c);
                std::printf("   %10.2f / %6.1f%%", r.totalMs(),
                            r.nonGemmPct());
                if (jsonRows)
                    jsonRows->push_back(
                        "    {\"model\": \"" + std::string(model) +
                        "\", \"flow\": \"" + flow + "\", \"batch\": " +
                        std::to_string(b) + ", \"total_ms\": " +
                        std::to_string(r.totalMs()) +
                        ", \"non_gemm_pct\": " +
                        std::to_string(r.nonGemmPct()) + "}");
            }
            std::printf("\n");
        }
    }
}

std::string
measuredJson(const MeasuredRow &r)
{
    return "    {\"model\": \"" + r.model + "\", \"unfused_ms\": " +
           std::to_string(r.unfusedMs) + ", \"fused_ms\": " +
           std::to_string(r.fusedMs) + ", \"speedup\": " +
           std::to_string(r.speedup()) + ", \"fusion_rate\": " +
           std::to_string(r.fusionRate) + ", \"groups\": " +
           std::to_string(r.groups) + "}";
}

}  // namespace

int
main(int argc, char **argv)
{
    std::string json;
    bool check = false, skip_modeled = false;
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        if (a == "--json") {
            json = (i + 1 < argc && argv[i + 1][0] != '-')
                       ? argv[++i]
                       : "BENCH_fusion.json";
        } else if (a == "--check") {
            check = true;
        } else if (a == "--skip-modeled") {
            skip_modeled = true;
        } else {
            std::fprintf(stderr,
                         "usage: %s [--json [FILE]] [--check] "
                         "[--skip-modeled]\n",
                         argv[0]);
            return 2;
        }
    }

    std::vector<std::string> modeledRows;
    if (!skip_modeled)
        printModeled(json.empty() ? nullptr : &modeledRows);

    // Measured: unfused vs fused end-to-end, optimized backend,
    // serial executor (single-thread for stable CI timings).
    const int reps = 3;
    std::vector<MeasuredRow> rows;
    std::printf("\nMeasured fusion speedup (optimized backend, scale "
                "1/8, best of %d)\n",
                reps);
    bench::printRule(78);
    std::printf("%-22s %12s %12s %9s %8s %7s\n", "model", "unfused_ms",
                "fused_ms", "speedup", "rate", "groups");
    for (const char *model :
         {"resnet50", "mobilenet_v2", "detr", "swin_t", "segformer"}) {
        MeasuredRow r = measureModel(model, reps);
        rows.push_back(r);
        std::printf("%-22s %12.2f %12.2f %8.2fx %7.2f %7lld\n",
                    r.model.c_str(), r.unfusedMs, r.fusedMs, r.speedup(),
                    r.fusionRate, static_cast<long long>(r.groups));
    }
    MeasuredRow micro = measurePointwiseMicro(20);
    std::printf("%-22s %12.3f %12.3f %8.2fx %7.2f %7lld\n",
                micro.model.c_str(), micro.unfusedMs, micro.fusedMs,
                micro.speedup(), micro.fusionRate,
                static_cast<long long>(micro.groups));

    std::printf("\nPaper reference (Fig. 8): TensorRT cuts DETR's "
                "non-GEMM share from ~60-66%% to ~15-23%%,\nwhile Swin "
                "and SegFormer keep 30-58%% non-GEMM even after "
                "fusion.\n");

    if (!json.empty()) {
        std::ofstream f(json);
        f << "{\n  \"modeled\": [\n";
        for (size_t i = 0; i < modeledRows.size(); ++i)
            f << modeledRows[i]
              << (i + 1 < modeledRows.size() ? ",\n" : "\n");
        f << "  ],\n  \"measured\": [\n";
        for (size_t i = 0; i < rows.size(); ++i)
            f << measuredJson(rows[i]) << ",\n";
        f << measuredJson(micro) << "\n  ],\n";
        f << "  \"micro_speedup\": " << micro.speedup() << "\n}\n";
        std::printf("wrote %s\n", json.c_str());
    }

    if (check) {
        // Minimum bars CI holds the fused hot path to. The micro bar
        // guards the single-pass chain loop; the CNN bar guards the
        // CONV+BN+act folding end to end.
        constexpr double kMicroBar = 1.3;
        constexpr double kCnnBar = 1.2;
        bool ok = true;
        if (micro.speedup() < kMicroBar) {
            std::fprintf(stderr,
                         "CHECK FAILED: point-wise-chain micro %.2fx < "
                         "%.2fx bar\n",
                         micro.speedup(), kMicroBar);
            ok = false;
        }
        double best_cnn = 0;
        for (const MeasuredRow &r : rows)
            if (r.model == "resnet50" || r.model == "mobilenet_v2")
                best_cnn = r.speedup() > best_cnn ? r.speedup()
                                                  : best_cnn;
        if (best_cnn < kCnnBar) {
            std::fprintf(stderr,
                         "CHECK FAILED: best CNN-family fused speedup "
                         "%.2fx < %.2fx bar\n",
                         best_cnn, kCnnBar);
            ok = false;
        }
        if (ok)
            std::printf("check: micro %.2fx >= %.2fx, best CNN %.2fx "
                        ">= %.2fx\n",
                        micro.speedup(), kMicroBar, best_cnn, kCnnBar);
        return ok ? 0 : 1;
    }
    return 0;
}
