/**
 * @file
 * Reproduces Table V: non-GEMM fusion rate and non-GEMM latency
 * before/after TensorRT fusion for Swin-T, Swin-B, DETR, SegFormer.
 *
 * Shape to match: DETR's batch norms all fold into GEMM kernels
 * (CONV+BN+RELU), yielding a far larger non-GEMM speedup than
 * SegFormer achieves at a comparable fusion rate.
 */
#include <cstdio>

#include "bench_util.h"

using namespace ngb;

int
main()
{
    std::printf("Table V: non-GEMM latency before/after TensorRT fusion "
                "(Platform A, avg of b1..b8)\n");
    bench::printRule(102);
    std::printf("%-10s %10s %14s %14s %10s %12s %14s\n", "model",
                "fusion%%", "before_ms(%%)", "after_ms(%%)", "speedup",
                "with_gemm%%", "paper");
    const char *paper[] = {"8.8%: 7.53->0.97", "7.0%: 14.59->1.65",
                           "30.0%: 32.17->2.38", "27.0%: 5.57->2.33"};
    int pi = 0;
    for (const char *model : {"swin_t", "swin_b", "detr", "segformer"}) {
        double before_ms = 0, after_ms = 0;
        double before_pct = 0, after_pct = 0;
        double fusion_rate = 0, with_gemm = 0;
        int n = 0;
        for (int64_t b : {1, 2, 4, 8}) {
            BenchConfig c;
            c.model = model;
            c.batch = b;
            c.flow = "pytorch";
            ProfileReport pt = Bench::run(c);
            c.flow = "tensorrt";
            ProfileReport trt = Bench::run(c);
            before_ms += pt.nonGemmUs / 1000;
            after_ms += trt.nonGemmUs / 1000;
            before_pct += pt.nonGemmPct();
            after_pct += trt.nonGemmPct();
            fusion_rate += 100.0 * trt.fusionStats.fusionRate();
            if (trt.fusionStats.fusedNonGemm > 0)
                with_gemm += 100.0 *
                             static_cast<double>(
                                 trt.fusionStats.fusedWithGemm) /
                             static_cast<double>(
                                 trt.fusionStats.fusedNonGemm);
            ++n;
        }
        before_ms /= n;
        after_ms /= n;
        before_pct /= n;
        after_pct /= n;
        fusion_rate /= n;
        with_gemm /= n;
        std::printf("%-10s %9.1f%% %7.2f (%4.1f%%) %7.2f (%4.1f%%) %9.2fx "
                    "%11.1f%% %18s\n",
                    model, fusion_rate, before_ms, before_pct, after_ms,
                    after_pct, before_ms / after_ms, with_gemm,
                    paper[pi++]);
    }
    return 0;
}
