/**
 * @file
 * Extension experiment: the architecture spectrum of the paper's
 * Figure 3, quantified. How does the non-GEMM share vary across the
 * three model families — norm-free CNN (VGG), BN CNN (ResNet,
 * MobileNet), and transformers (ViT, Swin, GPT-2) — before and after
 * fusion? Also emits the Section III-C Non-GEMM report per model and a
 * roofline SVG for one representative.
 */
#include <cstdio>
#include <fstream>
#include <iostream>

#include "bench_util.h"
#include "deploy/flow.h"
#include "models/registry.h"
#include "profiler/nongemm_report.h"
#include "profiler/svg_chart.h"

using namespace ngb;

int
main()
{
    std::printf("Extension: architecture spectrum (Platform A, batch 1)\n");
    bench::printRule(86);
    std::printf("%-14s %-14s %14s %14s %14s\n", "model", "family",
                "eager ng%%", "tensorrt ng%%", "dominant");
    struct Row {
        const char *model;
        const char *family;
    };
    const Row rows[] = {
        {"vgg16", "norm-free CNN"},   {"resnet50", "BN CNN"},
        {"mobilenet_v2", "DW CNN"},   {"vit_b", "transformer"},
        {"swin_t", "transformer"},    {"gpt2", "decoder LLM"},
    };
    for (const Row &row : rows) {
        BenchConfig c;
        c.model = row.model;
        c.flow = "pytorch";
        ProfileReport pt = Bench::run(c);
        c.flow = "tensorrt";
        ProfileReport trt = Bench::run(c);
        std::printf("%-14s %-14s %13.1f%% %13.1f%% %14s\n", row.model,
                    row.family, pt.nonGemmPct(), trt.nonGemmPct(),
                    opCategoryName(pt.dominantNonGemmCategory()).c_str());
    }
    std::printf("\nShape: the further right on the paper's Fig. 3 (CNN ->\n"
                "R-CNN -> transformer), the larger and more fusion-"
                "resistant\nthe non-GEMM share.\n");

    // Section III-C Non-GEMM report for two contrasting models.
    std::printf("\n");
    for (const char *m : {"detr", "gpt2"}) {
        ModelConfig mc;
        mc.seqLen = 8;
        Graph g = models::findModel(m).build(mc);
        printNonGemmReport(buildNonGemmReport(g), std::cout);
    }

    // Domain trace across one model per task.
    std::vector<std::pair<std::string, Graph>> domain_graphs;
    for (const char *m : {"vit_b", "detr", "segformer", "gpt2"}) {
        const auto &info = models::findModel(m);
        ModelConfig mc;
        mc.seqLen = info.defaultSeqLen > 0 ? info.defaultSeqLen : 8;
        domain_graphs.emplace_back(info.task, info.build(mc));
    }
    printDomainTrace(buildDomainTrace(domain_graphs), std::cout);

    // Roofline SVG of eager Swin-T on the A100.
    {
        ModelConfig mc;
        Graph g = models::findModel("swin_t").build(mc);
        auto plan = makePyTorchFlow()->plan(g, {true, false});
        CostModel cm(platformA());
        auto timings = cm.priceAll(plan);
        std::ofstream f("roofline_swin_t.svg");
        writeRooflineSvg(plan, timings, platformA().gpu,
                         "Swin-T eager kernels on A100", f);
        std::printf("\nwrote roofline_swin_t.svg\n");
    }
    return 0;
}
