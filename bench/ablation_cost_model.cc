/**
 * @file
 * Ablation study over the cost-model design choices DESIGN.md calls
 * out. Each sweep varies one knob and reports how the headline metric
 * (average non-GEMM share with GPU acceleration) responds:
 *
 *   1. eager host dispatch cost — the Amdahl lever that makes small
 *      non-GEMM kernels matter at all;
 *   2. GPU kernel-launch latency;
 *   3. the GEMM utilization ramp (small-kernel inefficiency);
 *   4. PCIe bandwidth for the ORT CPU-fallback path;
 *   5. composite-operator kernel counts (GELU/FrozenBN modeling).
 */
#include <cstdio>

#include "bench_util.h"

using namespace ngb;

namespace {

double
avgNonGemmPct(const CostModelParams &p, const char *flow = "pytorch")
{
    double sum = 0;
    int n = 0;
    for (const char *m : {"vit_b", "swin_t", "detr", "gpt2_xl"}) {
        BenchConfig c;
        c.model = m;
        c.flow = flow;
        c.costParams = p;
        sum += Bench::run(c).nonGemmPct();
        ++n;
    }
    return sum / n;
}

}  // namespace

int
main()
{
    std::printf("Ablation 1: eager host dispatch cost (us/kernel)\n");
    for (double d : {2.0, 6.0, 12.0, 24.0}) {
        CostModelParams p;
        p.hostDispatchUs = d;
        std::printf("  dispatch=%5.1fus -> avg non-GEMM %.1f%%\n", d,
                    avgNonGemmPct(p));
    }

    std::printf("\nAblation 2: GPU kernel launch latency is part of the\n"
                "platform spec; emulate via non-GEMM compute efficiency\n");
    for (double e : {0.01, 0.04, 0.16}) {
        CostModelParams p;
        p.nonGemmComputeEffGpu = e;
        std::printf("  nonGemmEff=%.2f -> avg non-GEMM %.1f%%\n", e,
                    avgNonGemmPct(p));
    }

    std::printf("\nAblation 3: GEMM utilization ramp (small-kernel "
                "inefficiency)\n");
    for (double r : {0.0, 2e8, 2e9, 2e10}) {
        CostModelParams p;
        p.gemmRampFlopsGpu = r;
        std::printf("  ramp=%8.0e flops -> avg non-GEMM %.1f%%\n", r,
                    avgNonGemmPct(p));
    }

    std::printf("\nAblation 4: ORT CPU-fallback sensitivity — Memory share "
                "of GPT2-XL under ORT\n");
    for (double bw : {6.0, 24.0, 96.0}) {
        // PCIe bandwidth lives in the platform spec; approximate the
        // sweep by scaling transfer traffic through zeroCopyUs-free
        // fallback: report the flow-level effect instead.
        BenchConfig c;
        c.model = "gpt2_xl";
        c.flow = "ort";
        ProfileReport r = Bench::run(c);
        std::printf("  pcie=%5.1f GB/s (spec: 24) -> ORT Memory share "
                    "%.1f%% of %.2f ms\n",
                    bw, r.categoryPct(OpCategory::Memory), r.totalMs());
        break;  // the spec is fixed; single datum + note
    }
    {
        BenchConfig c;
        c.model = "gpt2_xl";
        c.flow = "pytorch";
        ProfileReport pt = Bench::run(c);
        c.flow = "ort";
        ProfileReport ort = Bench::run(c);
        std::printf("  PyTorch Memory %.1f%% -> ORT Memory %.1f%%\n",
                    pt.categoryPct(OpCategory::Memory),
                    ort.categoryPct(OpCategory::Memory));
    }

    std::printf("\nAblation 5: dynamic-op sync cost (NMS / MoE routing)\n");
    for (double s : {0.0, 30.0, 120.0}) {
        CostModelParams p;
        p.dynamicSyncUs = s;
        BenchConfig c;
        c.model = "mixtral";
        c.costParams = p;
        ProfileReport r = Bench::run(c);
        std::printf("  sync=%5.1fus -> mixtral Memory share %.1f%%\n", s,
                    r.categoryPct(OpCategory::Memory));
    }

    std::printf("\nAblation 6: async dispatch (host/device overlap)\n");
    for (bool async_mode : {false, true}) {
        CostModelParams p;
        p.asyncDispatch = async_mode;
        double sum = 0;
        int n = 0;
        for (const char *m : {"gpt2_xl", "swin_t", "detr"}) {
            BenchConfig c;
            c.model = m;
            c.costParams = p;
            sum += Bench::run(c).totalMs();
            ++n;
        }
        std::printf("  async=%d -> avg latency %.2f ms (3-model mean)\n",
                    async_mode ? 1 : 0, sum / n);
    }

    std::printf("\nConclusion: the qualitative finding (non-GEMM grows "
                "under GEMM acceleration)\nholds across every knob "
                "setting; only the magnitudes move.\n");
    return 0;
}
