/**
 * @file
 * Executable-memory-planning benchmark: planned vs measured arena
 * behaviour for every registry model.
 *
 * For each model the harness builds one EnginePlan and runs the same
 * requests through a heap-backed and an arena-backed BatchDriver:
 *
 *  - planned:  MemoryPlan::arenaBytes (the lifetime-reuse peak) vs
 *              totalBytes (what a no-reuse allocator would hold) and
 *              the resulting reuseFactor;
 *  - measured: the arena extent actually bound at run time (plan
 *              utilization) and Storage heap allocations per request,
 *              split into a warm-up round and a steady-state round
 *              (outputs dropped between rounds, so arena blocks and
 *              scratch recycle the way a serving loop recycles them);
 *  - verified: arena outputs are bit-identical to heap outputs.
 *
 * `--json FILE` writes BENCH_memory.json. `--check` enforces the CI
 * bars: zero steady-state allocations and full no-alias bit-identity
 * on every model, and reuseFactor >= 1.5 on the CNN-family models
 * whose long chains of disjoint-lifetime activations are exactly what
 * arena planning exists to reuse. `--smoke` runs a fast subset.
 */
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "models/registry.h"
#include "runtime/batch_driver.h"
#include "runtime/request_util.h"
#include "runtime/thread_pool.h"

using namespace ngb;

namespace {

struct ModelMemory {
    std::string model;
    int64_t plannedArenaBytes = 0;
    int64_t plannedTotalBytes = 0;
    double reuseFactor = 1.0;
    int64_t measuredPeakBytes = 0;
    double utilization = 0;
    double heapAllocsPerReq = 0;    ///< heap driver, steady state
    double arenaAllocsPerReq = 0;   ///< arena driver, steady state
    int64_t arenaWarmupAllocs = 0;  ///< blocks + scratch growth
    bool bitIdentical = false;
};

/** Registry keys of the conv-backbone models the --check bar targets. */
bool
isCnnFamily(const std::string &name)
{
    return name == "resnet50" || name == "mobilenet_v2" ||
           name == "vgg16" || name == "faster_rcnn" ||
           name == "mask_rcnn";
}

ModelMemory
measureModel(const std::string &name, ThreadPool &pool, int requests,
             int rounds)
{
    const auto &info = models::findModel(name);
    ModelConfig mc;
    mc.batch = 1;
    mc.seqLen = 8;
    mc.testScale = 8;
    Graph g = info.build(mc);

    std::vector<std::vector<Tensor>> reqs;
    for (int r = 0; r < requests; ++r)
        reqs.push_back(
            makeRequestInputs(g, 1234 + 7919 * static_cast<uint64_t>(r)));

    ModelMemory m;
    m.model = name;

    auto plan = buildEnginePlan(g);
    m.plannedArenaBytes = plan->memplan.arenaBytes;
    m.plannedTotalBytes = plan->memplan.totalBytes;
    m.reuseFactor = plan->memplan.reuseFactor();

    BatchDriver heap(g, pool, defaultBackend(), /*arena=*/false);
    BatchDriver arena(g, pool, plan, defaultBackend(), /*arena=*/true);

    // Reference outputs + warm-up (param materialization, backend
    // prepare, scratch growth) before any steady-state counting.
    std::vector<std::vector<Tensor>> heap_outs = heap.run(reqs);

    uint64_t before = Storage::heapAllocCount();
    std::vector<std::vector<Tensor>> arena_outs = arena.run(reqs);
    m.arenaWarmupAllocs =
        static_cast<int64_t>(Storage::heapAllocCount() - before);

    m.bitIdentical = true;
    for (int r = 0; r < requests; ++r)
        m.bitIdentical =
            m.bitIdentical && bitIdentical(heap_outs[r], arena_outs[r]);
    m.measuredPeakBytes = arena.profile().memory.boundPeakBytes;
    m.utilization = m.plannedArenaBytes > 0
                        ? static_cast<double>(m.measuredPeakBytes) /
                              static_cast<double>(m.plannedArenaBytes)
                        : 0;
    // Drop the first arena round's outputs so its blocks recycle.
    arena_outs.clear();

    // Steady state: every plan/pool/scratch structure is warm; a
    // serving loop sits here for its whole life.
    before = Storage::heapAllocCount();
    for (int i = 0; i < rounds; ++i)
        arena.run(reqs);  // outputs dropped at the end of each round
    m.arenaAllocsPerReq =
        static_cast<double>(Storage::heapAllocCount() - before) /
        static_cast<double>(rounds * requests);

    heap_outs.clear();
    before = Storage::heapAllocCount();
    for (int i = 0; i < rounds; ++i)
        heap.run(reqs);
    m.heapAllocsPerReq =
        static_cast<double>(Storage::heapAllocCount() - before) /
        static_cast<double>(rounds * requests);
    return m;
}

}  // namespace

int
main(int argc, char **argv)
{
    bool smoke = false, check = false;
    std::string json;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0)
            smoke = true;
        else if (std::strcmp(argv[i], "--check") == 0)
            check = true;
        else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc)
            json = argv[++i];
    }

    std::vector<std::string> names;
    if (smoke) {
        names = {"vit_b", "gpt2", "resnet50"};
    } else {
        for (const auto &m : models::modelRegistry())
            names.push_back(m.name);
    }
    const int requests = smoke ? 2 : 4;
    const int rounds = smoke ? 2 : 3;

    ThreadPool pool(4);
    std::printf("executable memory planning: planned vs measured "
                "(backend %s, %d requests x %d steady rounds)%s\n",
                defaultBackend().name().c_str(), requests, rounds,
                smoke ? "  [smoke]" : "");
    bench::printRule(104);
    std::printf("%-14s %10s %10s %6s %8s %11s %11s %9s %5s\n", "model",
                "arena_KiB", "noreuse", "reuse", "util", "heap_all/rq",
                "arena_al/rq", "warmup", "bits");
    bench::printRule(104);

    std::vector<ModelMemory> results;
    bool ok = true;
    for (const std::string &name : names) {
        ModelMemory m = measureModel(name, pool, requests, rounds);
        results.push_back(m);
        std::printf("%-14s %10" PRId64 " %10" PRId64
                    " %5.2fx %7.1f%% %11.2f %11.2f %9" PRId64 " %5s\n",
                    m.model.c_str(), m.plannedArenaBytes / 1024,
                    m.plannedTotalBytes / 1024, m.reuseFactor,
                    100.0 * m.utilization, m.heapAllocsPerReq,
                    m.arenaAllocsPerReq, m.arenaWarmupAllocs,
                    m.bitIdentical ? "ok" : "DIFF");

        if (check) {
            if (!m.bitIdentical) {
                std::printf("CHECK FAILED: %s arena outputs differ from "
                            "heap\n",
                            m.model.c_str());
                ok = false;
            }
            if (m.arenaAllocsPerReq != 0.0) {
                std::printf("CHECK FAILED: %s steady-state arena "
                            "allocs/request = %.2f (want 0)\n",
                            m.model.c_str(), m.arenaAllocsPerReq);
                ok = false;
            }
            if (isCnnFamily(m.model) && m.reuseFactor < 1.5) {
                std::printf("CHECK FAILED: %s reuseFactor %.2f < 1.5\n",
                            m.model.c_str(), m.reuseFactor);
                ok = false;
            }
        }
    }
    bench::printRule(104);

    if (!json.empty()) {
        std::ofstream f(json);
        f << "{\n  \"backend\": \"" << defaultBackend().name()
          << "\",\n  \"requests\": " << requests
          << ",\n  \"steady_rounds\": " << rounds << ",\n  \"models\": [\n";
        for (size_t i = 0; i < results.size(); ++i) {
            const ModelMemory &m = results[i];
            f << "    {\"model\": \"" << m.model
              << "\", \"planned_arena_bytes\": " << m.plannedArenaBytes
              << ", \"planned_total_bytes\": " << m.plannedTotalBytes
              << ", \"reuse_factor\": " << m.reuseFactor
              << ", \"measured_peak_bytes\": " << m.measuredPeakBytes
              << ", \"utilization\": " << m.utilization
              << ", \"heap_allocs_per_request\": " << m.heapAllocsPerReq
              << ", \"arena_allocs_per_request\": " << m.arenaAllocsPerReq
              << ", \"arena_warmup_allocs\": " << m.arenaWarmupAllocs
              << ", \"bit_identical\": "
              << (m.bitIdentical ? "true" : "false") << "}"
              << (i + 1 < results.size() ? ",\n" : "\n");
        }
        f << "  ]\n}\n";
        std::printf("wrote %s\n", json.c_str());
    }

    if (check)
        std::printf("check: %s\n", ok ? "PASS" : "FAIL");
    return ok ? 0 : 1;
}
