/**
 * @file
 * Extension experiment: the autoregressive-generation regime behind
 * the paper's LLM rows. The paper profiles HF generate(), which runs a
 * prefill forward plus one decode step per generated token; each step
 * re-dispatches the whole layer stack on a single token and appends to
 * the KV cache.
 *
 * Shape to match: the decode step is almost entirely overhead + weight
 * streaming (GEMMs on a 1-token activation), so generation latency is
 * many times the prefill latency, and the per-step non-GEMM share is
 * even higher than prefill — explaining the paper's 231.6 ms PyTorch
 * Llama2 measurement at a 10-token prompt.
 */
#include <cstdio>

#include "bench_util.h"

using namespace ngb;

int
main()
{
    std::printf("Extension: prefill vs decode step (Platform A, PyTorch, "
                "batch 1)\n");
    bench::printRule(96);
    std::printf("%-10s %10s %8s | %10s %8s %8s | %22s\n", "model",
                "prefill", "ng%%", "step", "ng%%", "mem%%",
                "generate(8 tokens) est.");
    for (const char *m : {"gpt2", "gpt2_xl", "llama2", "llama3"}) {
        BenchConfig c;
        c.model = m;
        ProfileReport prefill = Bench::run(c);
        c.decodeStep = true;
        ProfileReport step = Bench::run(c);
        double gen_ms = prefill.totalMs() + 8.0 * step.totalMs();
        std::printf("%-10s %8.2fms %7.1f%% | %8.2fms %7.1f%% %7.1f%% | "
                    "%18.1f ms\n",
                    m, prefill.totalMs(), prefill.nonGemmPct(),
                    step.totalMs(), step.nonGemmPct(),
                    step.categoryPct(OpCategory::Memory), gen_ms);
    }
    std::printf("\nPaper context: PyTorch Llama2 measures 231.6 ms — the\n"
                "generation loop, not one forward. With the decode-step\n"
                "model, prefill + a handful of generated tokens lands in\n"
                "the same range; ONNX Runtime's compiled session cuts the\n"
                "per-step dispatch, which is exactly why its end-to-end\n"
                "Llama2 number collapses to 32.5 ms.\n");

    std::printf("\nDecode-step flow comparison (llama2):\n");
    for (const char *flow : {"pytorch", "ort", "tensorrt"}) {
        BenchConfig c;
        c.model = "llama2";
        c.decodeStep = true;
        c.flow = flow;
        ProfileReport r = Bench::run(c);
        std::printf("  %-10s %8.2f ms/step, non-GEMM %5.1f%%\n", flow,
                    r.totalMs(), r.nonGemmPct());
    }
    return 0;
}
