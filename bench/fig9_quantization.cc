/**
 * @file
 * Reproduces Figure 9 (Section IV-C): GEMM / non-GEMM breakdown of an
 * LLM.int8()-quantized Llama3-8B versus the FP16 baseline across
 * sequence lengths 512..8192 on Platform A.
 *
 * Shape to match: INT8 cuts GEMM time but dequantize/requantize adds
 * non-GEMM operators, so the non-GEMM share balloons; the element-wise
 * share grows with sequence length.
 */
#include <cstdio>

#include "bench_util.h"
#include "quant/quantize_pass.h"
#include "models/registry.h"

using namespace ngb;

int
main()
{
    std::printf("Figure 9: Llama3-8B, FP16 vs LLM.int8() (Platform A)\n");
    bench::printRule(110);
    bench::printCategoryHeader("seq/precision");

    double fp_ng = 0, q_ng = 0, fp_gemm_ms = 0, q_gemm_ms = 0;
    double fp_ngemm_ms = 0, q_ngemm_ms = 0;
    int n = 0;
    for (int64_t seq : {512, 1024, 2048, 4096, 8192}) {
        for (bool quant : {false, true}) {
            BenchConfig c;
            c.model = "llama3";
            c.seqLen = seq;
            c.quantize = quant;
            ProfileReport r = Bench::run(c);
            char label[64];
            std::snprintf(label, sizeof(label), "seq%ld/%s",
                          static_cast<long>(seq),
                          quant ? "int8" : "fp16");
            bench::printCategoryRow(label, r);
            if (quant) {
                q_ng += r.nonGemmPct();
                q_gemm_ms += r.gemmUs / 1000;
                q_ngemm_ms += r.nonGemmUs / 1000;
            } else {
                fp_ng += r.nonGemmPct();
                fp_gemm_ms += r.gemmUs / 1000;
                fp_ngemm_ms += r.nonGemmUs / 1000;
                ++n;
            }
        }
    }
    bench::printRule(110);
    std::printf("Averages over sequence lengths:\n");
    std::printf("  non-GEMM share: FP16 %.1f%% -> INT8 %.1f%%   "
                "(paper: 29.3%% -> 76.7%%)\n",
                fp_ng / n, q_ng / n);
    std::printf("  GEMM latency change: %.1f%%   (paper: -38.2%%)\n",
                100.0 * (q_gemm_ms - fp_gemm_ms) / fp_gemm_ms);
    std::printf("  non-GEMM latency ratio: %.2fx   (paper: 5.6x)\n",
                q_ngemm_ms / fp_ngemm_ms);

    // Extra operators introduced by the pass (paper: +6510).
    {
        ModelConfig mc;
        mc.seqLen = 512;
        Graph g = models::findModel("llama3").build(mc);
        QuantizeStats st;
        QuantizeConfig qc;
        quantizeLlmInt8(g, qc, &st);
        std::printf("  extra non-GEMM ops from Q/DQ + decomposition: %ld "
                    "(paper: 6510 incl. decode steps)\n",
                    static_cast<long>(st.addedNonGemmOps));
    }
    return 0;
}
