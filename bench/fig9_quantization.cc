/**
 * @file
 * Reproduces Figure 9 (Section IV-C): GEMM / non-GEMM breakdown of an
 * LLM.int8()-quantized Llama3-8B versus the FP16 baseline across
 * sequence lengths 512..8192 on Platform A — modeled, and since the
 * executable quantization subsystem also MEASURED: registry graphs run
 * end to end float vs int8, unfused vs fused, under the optimized
 * backend, with arena bytes, standalone Q/DQ op counts, and the
 * packed-weight memory reduction per model.
 *
 * Shape to match (modeled): INT8 cuts GEMM time but dequantize /
 * requantize adds non-GEMM operators, so the non-GEMM share balloons.
 * The measured section shows the executable counterpart: the granular
 * Q -> Int8Linear -> DQ pipeline pays exactly that Q/DQ tax, and Q/DQ
 * elimination + requantize-fused GEMM epilogues claw it back.
 *
 *   bench_fig9_quantization [--json [FILE]] [--check] [--skip-modeled]
 *
 * --json writes BENCH_quantization.json (modeled + measured). --check
 * exits non-zero unless every quantized model holds the >=1.8x
 * weight-memory bar, elimination strictly reduces standalone Q/DQ ops,
 * and the best fused-int8 speedup over fused-float clears a minimum
 * bar; CI runs it so a quantized hot-path regression cannot ship
 * green.
 */
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "deploy/fusion.h"
#include "graph/executor.h"
#include "models/registry.h"
#include "ops/backend.h"
#include "quant/quant_mode.h"
#include "quant/quantize_pass.h"
#include "runtime/batch_driver.h"
#include "runtime/request_util.h"

using namespace ngb;

namespace {

double
timedRunMs(const Graph &g, const Backend &backend,
           const std::vector<Tensor> &inputs, int reps)
{
    Executor ex(g, backend);
    ex.run(inputs);  // warm-up: params, derived int8 weights, scales
    double best = 1e30;
    for (int r = 0; r < reps; ++r) {
        auto t0 = std::chrono::steady_clock::now();
        ex.run(inputs);
        double ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
        best = ms < best ? ms : best;
    }
    return best;
}

struct MeasuredRow {
    std::string model;
    int64_t linears = 0;       ///< linears rewritten to int8
    double floatMs = 0;        ///< float, unfused
    double floatFusedMs = 0;   ///< float, applyFusion'd
    double int8RawMs = 0;      ///< granular Q -> Int8Linear -> DQ
    double int8Ms = 0;         ///< Q/DQ-eliminated
    double int8FusedMs = 0;    ///< eliminated + applyFusion'd
    int64_t qdqRaw = 0;        ///< standalone Q/DQ ops before elim
    int64_t qdqElim = 0;       ///< ... and after
    int64_t arenaFloat = 0;    ///< planned arena bytes, float graph
    int64_t arenaInt8 = 0;     ///< planned arena bytes, int8 graph
    double weightCompression = 1.0;

    double speedup() const
    {
        return int8Ms > 0 ? floatMs / int8Ms : 0;
    }
    double fusedSpeedup() const
    {
        return int8FusedMs > 0 ? floatFusedMs / int8FusedMs : 0;
    }
};

MeasuredRow
measureModel(const std::string &name, int scale, int reps)
{
    const auto &info = models::findModel(name);
    Graph g = info.build(ModelConfig{1, 8, false, 0, scale});

    QuantizeStats st;
    Graph raw = quant::applyQuantMode(g, quant::QuantExecMode::Int8Raw);
    Graph q8 = quant::applyQuantMode(g, quant::QuantExecMode::Int8, &st);
    Graph gf = applyFusion(g, executableFusionConfig());
    Graph qf = applyFusion(q8, executableFusionConfig());

    MeasuredRow row;
    row.model = name;
    row.linears = st.linearsQuantized;
    row.qdqRaw = quant::quantExecStatsOf(raw).qdqOps;
    row.qdqElim = quant::quantExecStatsOf(q8).qdqOps;
    row.weightCompression =
        quant::quantExecStatsOf(q8).weightCompression();
    row.arenaFloat = buildEnginePlan(g)->memplan.arenaBytes;
    row.arenaInt8 = buildEnginePlan(q8)->memplan.arenaBytes;

    std::vector<Tensor> inputs = makeRequestInputs(g, 42);
    const Backend &backend = optimizedBackend();
    row.floatMs = timedRunMs(g, backend, inputs, reps);
    row.floatFusedMs = timedRunMs(gf, backend, inputs, reps);
    row.int8RawMs = timedRunMs(raw, backend, inputs, reps);
    row.int8Ms = timedRunMs(q8, backend, inputs, reps);
    row.int8FusedMs = timedRunMs(qf, backend, inputs, reps);
    return row;
}

void
printModeled(std::vector<std::string> *jsonRows)
{
    std::printf("Figure 9: Llama3-8B, FP16 vs LLM.int8() (Platform A, "
                "modeled)\n");
    bench::printRule(110);
    bench::printCategoryHeader("seq/precision");

    double fp_ng = 0, q_ng = 0, fp_gemm_ms = 0, q_gemm_ms = 0;
    double fp_ngemm_ms = 0, q_ngemm_ms = 0;
    int n = 0;
    for (int64_t seq : {512, 1024, 2048, 4096, 8192}) {
        for (bool quant : {false, true}) {
            BenchConfig c;
            c.model = "llama3";
            c.seqLen = seq;
            c.quantize = quant;
            ProfileReport r = Bench::run(c);
            char label[64];
            std::snprintf(label, sizeof(label), "seq%ld/%s",
                          static_cast<long>(seq),
                          quant ? "int8" : "fp16");
            bench::printCategoryRow(label, r);
            if (jsonRows)
                jsonRows->push_back(
                    "    {\"seq\": " + std::to_string(seq) +
                    ", \"precision\": \"" +
                    (quant ? "int8" : "fp16") + "\", \"total_ms\": " +
                    std::to_string(r.totalMs()) +
                    ", \"non_gemm_pct\": " +
                    std::to_string(r.nonGemmPct()) + "}");
            if (quant) {
                q_ng += r.nonGemmPct();
                q_gemm_ms += r.gemmUs / 1000;
                q_ngemm_ms += r.nonGemmUs / 1000;
            } else {
                fp_ng += r.nonGemmPct();
                fp_gemm_ms += r.gemmUs / 1000;
                fp_ngemm_ms += r.nonGemmUs / 1000;
                ++n;
            }
        }
    }
    bench::printRule(110);
    std::printf("Averages over sequence lengths:\n");
    std::printf("  non-GEMM share: FP16 %.1f%% -> INT8 %.1f%%   "
                "(paper: 29.3%% -> 76.7%%)\n",
                fp_ng / n, q_ng / n);
    std::printf("  GEMM latency change: %.1f%%   (paper: -38.2%%)\n",
                100.0 * (q_gemm_ms - fp_gemm_ms) / fp_gemm_ms);
    std::printf("  non-GEMM latency ratio: %.2fx   (paper: 5.6x)\n",
                q_ngemm_ms / fp_ngemm_ms);

    // Extra operators introduced by the modeled pass (paper: +6510).
    {
        ModelConfig mc;
        mc.seqLen = 512;
        Graph g = models::findModel("llama3").build(mc);
        QuantizeStats st;
        QuantizeConfig qc;
        quantizeLlmInt8(g, qc, &st);
        std::printf("  extra non-GEMM ops from Q/DQ + decomposition: "
                    "%ld (paper: 6510 incl. decode steps)\n",
                    static_cast<long>(st.addedNonGemmOps));
    }
}

std::string
measuredJson(const MeasuredRow &r)
{
    return "    {\"model\": \"" + r.model + "\", \"linears\": " +
           std::to_string(r.linears) + ", \"float_ms\": " +
           std::to_string(r.floatMs) + ", \"float_fused_ms\": " +
           std::to_string(r.floatFusedMs) + ", \"int8_raw_ms\": " +
           std::to_string(r.int8RawMs) + ", \"int8_ms\": " +
           std::to_string(r.int8Ms) + ", \"int8_fused_ms\": " +
           std::to_string(r.int8FusedMs) + ", \"speedup\": " +
           std::to_string(r.speedup()) + ", \"fused_speedup\": " +
           std::to_string(r.fusedSpeedup()) + ", \"qdq_raw\": " +
           std::to_string(r.qdqRaw) + ", \"qdq_eliminated\": " +
           std::to_string(r.qdqElim) + ", \"arena_float_bytes\": " +
           std::to_string(r.arenaFloat) + ", \"arena_int8_bytes\": " +
           std::to_string(r.arenaInt8) +
           ", \"weight_compression\": " +
           std::to_string(r.weightCompression) + "}";
}

}  // namespace

int
main(int argc, char **argv)
{
    std::string json;
    bool check = false, skip_modeled = false;
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        if (a == "--json") {
            json = (i + 1 < argc && argv[i + 1][0] != '-')
                       ? argv[++i]
                       : "BENCH_quantization.json";
        } else if (a == "--check") {
            check = true;
        } else if (a == "--skip-modeled") {
            skip_modeled = true;
        } else {
            std::fprintf(stderr,
                         "usage: %s [--json [FILE]] [--check] "
                         "[--skip-modeled]\n",
                         argv[0]);
            return 2;
        }
    }

    std::vector<std::string> modeledRows;
    if (!skip_modeled)
        printModeled(json.empty() ? nullptr : &modeledRows);

    // Measured: float vs int8, unfused vs fused, optimized backend,
    // serial executor (single-thread for stable CI timings). Scale
    // 1/4 keeps K large enough that the int8 GEMM core is the story,
    // not the Q/DQ overhead of toy shapes.
    const int reps = 3, scale = 4;
    std::vector<MeasuredRow> rows;
    std::printf("\nMeasured: float vs int8, unfused vs fused "
                "(optimized backend, scale 1/%d, best of %d)\n",
                scale, reps);
    bench::printRule(100);
    std::printf("%-10s %5s %9s %9s %9s %9s %9s %8s %8s %6s %7s\n",
                "model", "q", "float", "float+f", "int8raw", "int8",
                "int8+f", "speedup", "fused", "qdq", "wmem");
    for (const char *model :
         {"gpt2", "gpt2_l", "bert", "llama3", "vit_b", "detr"}) {
        MeasuredRow r = measureModel(model, scale, reps);
        rows.push_back(r);
        std::printf("%-10s %5lld %8.2fm %8.2fm %8.2fm %8.2fm %8.2fm "
                    "%7.2fx %7.2fx %2lld->%-2lld %6.2fx\n",
                    r.model.c_str(), static_cast<long long>(r.linears),
                    r.floatMs, r.floatFusedMs, r.int8RawMs, r.int8Ms,
                    r.int8FusedMs, r.speedup(), r.fusedSpeedup(),
                    static_cast<long long>(r.qdqRaw),
                    static_cast<long long>(r.qdqElim),
                    r.weightCompression);
    }

    std::printf("\nPaper reference (Fig. 9): INT8 cuts GEMM time "
                "-38.2%% but Q/DQ balloons the non-GEMM share from "
                "29.3%% to 76.7%%;\nthe executable pipeline's Q/DQ "
                "elimination + fused requantize epilogues remove that "
                "standalone Q/DQ work.\n");

    if (!json.empty()) {
        std::ofstream f(json);
        f << "{\n  \"modeled\": [\n";
        for (size_t i = 0; i < modeledRows.size(); ++i)
            f << modeledRows[i]
              << (i + 1 < modeledRows.size() ? ",\n" : "\n");
        f << "  ],\n  \"measured\": [\n";
        for (size_t i = 0; i < rows.size(); ++i)
            f << measuredJson(rows[i])
              << (i + 1 < rows.size() ? ",\n" : "\n");
        f << "  ]\n}\n";
        std::printf("wrote %s\n", json.c_str());
    }

    if (check) {
        // Minimum bars CI holds the quantized path to: the memory
        // bar guards packed-weight derivation, the Q/DQ bar guards
        // the elimination rewrite, the speed bar guards the fused
        // int8 GEMM core end to end on the LLM-family models.
        constexpr double kWeightMemBar = 1.8;
        constexpr double kSpeedBar = 1.1;
        bool ok = true;
        double best = 0;
        for (const MeasuredRow &r : rows) {
            if (r.linears == 0)
                continue;
            if (r.weightCompression < kWeightMemBar) {
                std::fprintf(stderr,
                             "CHECK FAILED: %s weight memory %.2fx < "
                             "%.2fx bar\n",
                             r.model.c_str(), r.weightCompression,
                             kWeightMemBar);
                ok = false;
            }
            if (r.linears > 1 && r.qdqElim >= r.qdqRaw) {
                std::fprintf(stderr,
                             "CHECK FAILED: %s Q/DQ elimination left "
                             "%lld of %lld standalone ops\n",
                             r.model.c_str(),
                             static_cast<long long>(r.qdqElim),
                             static_cast<long long>(r.qdqRaw));
                ok = false;
            }
            best = r.fusedSpeedup() > best ? r.fusedSpeedup() : best;
        }
        if (best < kSpeedBar) {
            std::fprintf(stderr,
                         "CHECK FAILED: best fused int8-vs-float "
                         "speedup %.2fx < %.2fx bar\n",
                         best, kSpeedBar);
            ok = false;
        }
        if (ok)
            std::printf("check: weight memory >= %.1fx on all "
                        "quantized models, Q/DQ eliminated, best "
                        "fused int8 speedup %.2fx >= %.2fx\n",
                        kWeightMemBar, best, kSpeedBar);
        return ok ? 0 : 1;
    }
    return 0;
}
