#ifndef NGB_BENCH_BENCH_UTIL_H
#define NGB_BENCH_BENCH_UTIL_H

#include <cstdio>
#include <string>
#include <vector>

#include "core/bench.h"

/**
 * @file
 * Shared helpers for the figure/table reproduction harnesses: compact
 * fixed-width table printing and the category column order used by the
 * paper's Figure 6 legend.
 */

namespace ngb {
namespace bench {

/** Figure 6 legend order. */
inline const std::vector<OpCategory> &
figureCategories()
{
    static const std::vector<OpCategory> kCats = {
        OpCategory::Gemm,          OpCategory::Activation,
        OpCategory::Normalization, OpCategory::Memory,
        OpCategory::RoiSelection,  OpCategory::Interpolation,
        OpCategory::ElementWise,   OpCategory::LogitCompute,
        OpCategory::Embedding,     OpCategory::QDQ,
        OpCategory::Misc,
    };
    return kCats;
}

/** Print the category header row. */
inline void
printCategoryHeader(const char *label)
{
    std::printf("%-18s %9s", label, "total_ms");
    for (OpCategory c : figureCategories())
        std::printf(" %6.6s", opCategoryName(c).c_str());
    std::printf("\n");
}

/** Print one breakdown row: per-category percent of total latency. */
inline void
printCategoryRow(const std::string &label, const ProfileReport &r)
{
    std::printf("%-18s %9.2f", label.c_str(), r.totalMs());
    for (OpCategory c : figureCategories())
        std::printf(" %5.1f%%", r.categoryPct(c));
    std::printf("\n");
}

inline void
printRule(int width = 100)
{
    for (int i = 0; i < width; ++i)
        std::putchar('-');
    std::putchar('\n');
}

}  // namespace bench
}  // namespace ngb

#endif  // NGB_BENCH_BENCH_UTIL_H
