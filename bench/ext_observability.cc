/**
 * @file
 * Observability-overhead benchmark: what does watching the runtime
 * cost? For every registry model the harness executes the same
 * requests through the same BatchDriver under three configurations —
 *
 *  - off:     tracing and metrics disabled (the shipped default);
 *  - metrics: the metrics registry armed (relaxed-atomic counters and
 *             histograms on the serve/runtime hot paths);
 *  - trace:   full span tracing armed on top of metrics (a SpanEvent
 *             into the per-thread ring for every node evaluated, plus
 *             request/level/plan spans);
 *
 * interleaving the configurations round-robin so drift (frequency
 * scaling, cache warmth) hits all three equally, then comparing
 * per-config median wall times. The paper's instrument-the-runtime
 * story only holds if observation is effectively free when off and
 * cheap when on, so `--check` enforces the CI bars on the aggregate
 * (all-model) medians:
 *
 *  - metrics overhead <= 3% of the off baseline,
 *  - full tracing overhead <= 10%,
 *  - outputs bit-identical across all three configurations on every
 *    model (observation must never perturb a single bit).
 *
 * `--json FILE` writes BENCH_observability.json. `--smoke` runs a
 * fast three-model subset with fewer rounds.
 */
#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "models/registry.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "runtime/batch_driver.h"
#include "runtime/request_util.h"
#include "runtime/thread_pool.h"

using namespace ngb;

namespace {

enum Config { kOff = 0, kMetrics = 1, kTrace = 2 };
constexpr int kConfigs = 3;
const char *kConfigName[kConfigs] = {"off", "metrics", "trace"};

void
applyConfig(Config c)
{
    obs::setMetricsEnabled(c >= kMetrics);
    obs::setTraceEnabled(c >= kTrace);
}

struct ModelOverhead {
    std::string model;
    double medianUs[kConfigs] = {0, 0, 0};
    uint64_t spans = 0;  ///< spans recorded by the traced rounds
    bool bitIdentical = false;
};

double
median(std::vector<double> v)
{
    std::sort(v.begin(), v.end());
    return v.empty() ? 0 : v[v.size() / 2];
}

ModelOverhead
measureModel(const std::string &name, ThreadPool &pool, int requests,
             int rounds)
{
    const auto &info = models::findModel(name);
    ModelConfig mc;
    mc.batch = 1;
    mc.seqLen = 8;
    mc.testScale = 8;
    Graph g = info.build(mc);

    std::vector<std::vector<Tensor>> reqs;
    for (int r = 0; r < requests; ++r)
        reqs.push_back(
            makeRequestInputs(g, 1234 + 7919 * static_cast<uint64_t>(r)));

    ModelOverhead m;
    m.model = name;

    auto plan = buildEnginePlan(g);
    BatchDriver driver(g, pool, plan, defaultBackend(), /*arena=*/true);

    // Warm up with everything off: param materialization, backend
    // prepare, arena/scratch growth — none of that is observation
    // cost, so it must not land in any config's timings.
    applyConfig(kOff);
    std::vector<std::vector<Tensor>> ref = driver.run(reqs);

    uint64_t spans0 = obs::Tracer::instance().totalRecorded();
    std::vector<double> us[kConfigs];
    std::vector<std::vector<Tensor>> last[kConfigs];
    for (int round = 0; round < rounds; ++round) {
        for (int c = 0; c < kConfigs; ++c) {
            applyConfig(static_cast<Config>(c));
            auto t0 = std::chrono::steady_clock::now();
            last[c] = driver.run(reqs);
            us[c].push_back(
                std::chrono::duration<double, std::micro>(
                    std::chrono::steady_clock::now() - t0)
                    .count());
        }
    }
    applyConfig(kOff);
    m.spans = obs::Tracer::instance().totalRecorded() - spans0;

    for (int c = 0; c < kConfigs; ++c)
        m.medianUs[c] = median(us[c]);
    m.bitIdentical = true;
    for (int r = 0; r < requests; ++r)
        for (int c = 0; c < kConfigs; ++c)
            m.bitIdentical =
                m.bitIdentical && bitIdentical(ref[r], last[c][r]);
    return m;
}

}  // namespace

int
main(int argc, char **argv)
{
    bool smoke = false, check = false;
    std::string json;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0)
            smoke = true;
        else if (std::strcmp(argv[i], "--check") == 0)
            check = true;
        else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc)
            json = argv[++i];
    }

    std::vector<std::string> names;
    if (smoke) {
        names = {"vit_b", "gpt2", "resnet50"};
    } else {
        for (const auto &m : models::modelRegistry())
            names.push_back(m.name);
    }
    const int requests = smoke ? 2 : 4;
    const int rounds = smoke ? 3 : 5;

    ThreadPool pool(4);
    std::printf("observability overhead: off vs metrics vs full tracing "
                "(backend %s, %d requests x %d rounds, interleaved)%s\n",
                defaultBackend().name().c_str(), requests, rounds,
                smoke ? "  [smoke]" : "");
    bench::printRule(96);
    std::printf("%-14s %10s %10s %10s %9s %9s %9s %5s\n", "model",
                "off_ms", "metr_ms", "trace_ms", "metr_ovh", "trace_ovh",
                "spans", "bits");
    bench::printRule(96);

    std::vector<ModelOverhead> results;
    double sum[kConfigs] = {0, 0, 0};
    bool bits_ok = true;
    for (const std::string &name : names) {
        ModelOverhead m = measureModel(name, pool, requests, rounds);
        results.push_back(m);
        for (int c = 0; c < kConfigs; ++c)
            sum[c] += m.medianUs[c];
        auto ovh = [&](int c) {
            return m.medianUs[kOff] > 0
                       ? 100.0 * (m.medianUs[c] / m.medianUs[kOff] - 1.0)
                       : 0.0;
        };
        std::printf("%-14s %10.2f %10.2f %10.2f %8.1f%% %8.1f%% %9" PRIu64
                    " %5s\n",
                    m.model.c_str(), m.medianUs[kOff] * 1e-3,
                    m.medianUs[kMetrics] * 1e-3, m.medianUs[kTrace] * 1e-3,
                    ovh(kMetrics), ovh(kTrace), m.spans,
                    m.bitIdentical ? "ok" : "DIFF");
        bits_ok = bits_ok && m.bitIdentical;
    }
    bench::printRule(96);

    // Per-model ratios on host hardware are noisy; the CI bars gate
    // the aggregate — total observed time across the whole registry
    // sweep, where per-model jitter averages out.
    double metrics_ovh =
        sum[kOff] > 0 ? sum[kMetrics] / sum[kOff] - 1.0 : 0.0;
    double trace_ovh = sum[kOff] > 0 ? sum[kTrace] / sum[kOff] - 1.0 : 0.0;
    std::printf("aggregate: off %.1f ms, metrics %.1f ms (%+.2f%%), "
                "full tracing %.1f ms (%+.2f%%)\n",
                sum[kOff] * 1e-3, sum[kMetrics] * 1e-3,
                100.0 * metrics_ovh, sum[kTrace] * 1e-3,
                100.0 * trace_ovh);

    bool ok = true;
    if (check) {
        if (!bits_ok) {
            std::printf("CHECK FAILED: outputs differ across "
                        "observability configurations\n");
            ok = false;
        }
        if (metrics_ovh > 0.03) {
            std::printf("CHECK FAILED: aggregate metrics overhead "
                        "%.2f%% > 3%%\n",
                        100.0 * metrics_ovh);
            ok = false;
        }
        if (trace_ovh > 0.10) {
            std::printf("CHECK FAILED: aggregate tracing overhead "
                        "%.2f%% > 10%%\n",
                        100.0 * trace_ovh);
            ok = false;
        }
    }

    if (!json.empty()) {
        std::ofstream f(json);
        f << "{\n  \"backend\": \"" << defaultBackend().name()
          << "\",\n  \"requests\": " << requests
          << ",\n  \"rounds\": " << rounds
          << ",\n  \"aggregate\": {\"off_us\": " << sum[kOff]
          << ", \"metrics_us\": " << sum[kMetrics]
          << ", \"trace_us\": " << sum[kTrace]
          << ", \"metrics_overhead\": " << metrics_ovh
          << ", \"trace_overhead\": " << trace_ovh
          << "},\n  \"models\": [\n";
        for (size_t i = 0; i < results.size(); ++i) {
            const ModelOverhead &m = results[i];
            f << "    {\"model\": \"" << m.model
              << "\", \"off_us\": " << m.medianUs[kOff]
              << ", \"metrics_us\": " << m.medianUs[kMetrics]
              << ", \"trace_us\": " << m.medianUs[kTrace]
              << ", \"spans\": " << m.spans << ", \"bit_identical\": "
              << (m.bitIdentical ? "true" : "false") << "}"
              << (i + 1 < results.size() ? ",\n" : "\n");
        }
        f << "  ]\n}\n";
        std::printf("wrote %s\n", json.c_str());
    }

    if (check)
        std::printf("check: %s\n", ok ? "PASS" : "FAIL");
    return ok ? 0 : 1;
}
