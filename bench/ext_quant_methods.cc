/**
 * @file
 * Extension experiment: is the Fig. 9 non-GEMM blowup intrinsic to
 * quantization? Compare LLM.int8() (activation+weight int8, Q/DQ ops
 * around every linear) with weight-only int8 (GPTQ/AWQ-style, cited by
 * the paper as [21]/[36]) on Llama3-8B.
 *
 * Expected shape: weight-only cuts latency (parameter traffic halves)
 * while keeping the non-GEMM share flat; LLM.int8() cuts GEMM time
 * more but inflates non-GEMM — the paper's aggravation comes from
 * activation quantization specifically.
 */
#include <cstdio>

#include "bench_util.h"

using namespace ngb;

int
main()
{
    std::printf("Extension: quantization methods on Llama3-8B "
                "(Platform A)\n");
    bench::printRule(86);
    std::printf("%8s | %10s %7s | %10s %7s | %10s %7s %6s\n", "seq",
                "fp16_ms", "ng%%", "w8only_ms", "ng%%", "int8_ms",
                "ng%%", "QDQ%%");
    for (int64_t seq : {512, 2048, 8192}) {
        BenchConfig c;
        c.model = "llama3";
        c.seqLen = seq;
        ProfileReport fp = Bench::run(c);
        c.quantize = true;
        c.quantMethod = QuantMethod::WeightOnlyInt8;
        ProfileReport w8 = Bench::run(c);
        c.quantMethod = QuantMethod::LlmInt8;
        ProfileReport q8 = Bench::run(c);
        std::printf("%8ld | %10.1f %6.1f%% | %10.1f %6.1f%% | %10.1f "
                    "%6.1f%% %5.1f%%\n",
                    static_cast<long>(seq), fp.totalMs(), fp.nonGemmPct(),
                    w8.totalMs(), w8.nonGemmPct(), q8.totalMs(),
                    q8.nonGemmPct(), q8.categoryPct(OpCategory::QDQ));
    }
    std::printf("\nDecode step (the weight-streaming-bound regime, cache "
                "512):\n");
    {
        BenchConfig c;
        c.model = "llama3";
        c.seqLen = 512;
        c.decodeStep = true;
        ProfileReport fp = Bench::run(c);
        c.quantize = true;
        c.quantMethod = QuantMethod::WeightOnlyInt8;
        ProfileReport w8 = Bench::run(c);
        c.quantMethod = QuantMethod::LlmInt8;
        ProfileReport q8 = Bench::run(c);
        std::printf("  fp16 %.2f ms/step | w8-only %.2f ms/step | "
                    "LLM.int8 %.2f ms/step (ng %.1f%%)\n",
                    fp.totalMs(), w8.totalMs(), q8.totalMs(),
                    q8.nonGemmPct());
    }

    std::printf("\nTakeaway: weight-only quantization gets most of the\n"
                "speedup with none of the non-GEMM aggravation — the\n"
                "paper's Fig. 9 blowup is the price of activation\n"
                "quantization (dequant/requant around non-GEMM ops).\n");
    return 0;
}
