/**
 * @file
 * Extension experiment: batching along both axes the paper leaves
 * open.
 *
 * Part 1 (cost model): how the per-inference batch dimension moves the
 * GEMM / non-GEMM balance. Larger batches amortize per-kernel
 * overheads and feed the GEMMs, so the non-GEMM share should fall for
 * compute-heavy models — but stays stubborn where the non-GEMM work
 * itself scales with batch (memory-layout traffic in Swin,
 * element-wise bursts in detection).
 *
 * Part 2 (measured): multi-request batching through the parallel
 * runtime in src/runtime. One planned graph (wavefront schedule +
 * lifetime arena, built once) serves N independent requests across a
 * work-stealing pool; the table sweeps threads x requests and reports
 * wall time, throughput, and speedup over the serial reference.
 */
#include <cstdio>

#include "bench_util.h"
#include "models/registry.h"
#include "runtime/batch_driver.h"
#include "runtime/request_util.h"

using namespace ngb;

namespace {

std::vector<Tensor>
makeInputs(const Graph &g, size_t request)
{
    return makeRequestInputs(g,
                             1234 + 7919 * static_cast<uint64_t>(request));
}

void
sweepParallelRuntime()
{
    constexpr int64_t kScale = 8;  // host-executable model size
    std::printf("\nExtension: parallel runtime, one planned graph "
                "serving N requests (scale 1/%lld)\n",
                static_cast<long long>(kScale));
    bench::printRule(76);
    std::printf("%-10s %4s %4s %10s %10s %9s %8s %7s\n", "model",
                "thr", "req", "wall_ms", "req_per_s", "conc",
                "util", "reuse");

    for (const char *name : {"vit_b", "swin_t", "gpt2"}) {
        const auto &info = models::findModel(name);
        ModelConfig mc;
        mc.batch = 1;
        mc.seqLen = 8;
        mc.testScale = kScale;
        Graph g = info.build(mc);

        for (int threads : {1, 2, 4}) {
            for (size_t requests : {size_t(1), size_t(4), size_t(8)}) {
                ThreadPool pool(threads);
                std::vector<std::vector<Tensor>> reqs;
                for (size_t r = 0; r < requests; ++r)
                    reqs.push_back(makeInputs(g, r));

                BatchDriver driver(g, pool);
                driver.run(reqs);
                const RuntimeProfile &p = driver.profile();
                double wall_ms = p.wallUs * 1e-3;
                double rps = p.wallUs > 0
                                 ? 1e6 * static_cast<double>(requests) /
                                       p.wallUs
                                 : 0;
                std::printf(
                    "%-10s %4d %4zu %10.1f %10.1f %8.2fx %6.0f%% %6.2fx\n",
                    name, threads, requests, wall_ms, rps, p.concurrency(),
                    100.0 * p.utilization(),
                    driver.memoryPlan().reuseFactor());
            }
        }
    }
    std::printf("\nShape: achieved concurrency tracks min(threads,\n"
                "requests); wall-clock gains require that many physical\n"
                "cores. Planning (schedule + arena + params) is paid\n"
                "once per graph and amortized across the whole batch.\n");
}

}  // namespace

int
main()
{
    std::printf("Extension: non-GEMM share vs batch "
                "(Platform A, CPU+GPU, PyTorch)\n");
    bench::printRule(76);
    std::printf("%-14s", "model");
    for (int b : {1, 2, 4, 8, 16, 32})
        std::printf(" %8s", ("b" + std::to_string(b)).c_str());
    std::printf("\n");
    for (const char *m :
         {"vit_b", "vit_h", "swin_t", "detr", "segformer", "gpt2_xl",
          "bert", "resnet50"}) {
        std::printf("%-14s", m);
        for (int64_t batch : {1, 2, 4, 8, 16, 32}) {
            BenchConfig c;
            c.model = m;
            c.batch = batch;
            std::printf(" %7.1f%%", Bench::run(c).nonGemmPct());
        }
        std::printf("\n");
    }
    std::printf("\nShape: compute-heavy models (ViT-H, ResNet) amortize\n"
                "toward GEMM dominance; layout-bound models (Swin) and\n"
                "overhead-bound LLM prefill (GPT2-XL at seq 8) keep a\n"
                "large non-GEMM share at every batch size.\n");

    sweepParallelRuntime();
    return 0;
}
