/**
 * @file
 * Extension experiment: how batch size moves the GEMM / non-GEMM
 * balance. Larger batches amortize per-kernel overheads and feed the
 * GEMMs, so the non-GEMM share should fall for compute-heavy models —
 * but stays stubborn where the non-GEMM work itself scales with batch
 * (memory-layout traffic in Swin, element-wise bursts in detection).
 */
#include <cstdio>

#include "bench_util.h"

using namespace ngb;

int
main()
{
    std::printf("Extension: non-GEMM share vs batch "
                "(Platform A, CPU+GPU, PyTorch)\n");
    bench::printRule(76);
    std::printf("%-14s", "model");
    for (int b : {1, 2, 4, 8, 16, 32})
        std::printf(" %8s", ("b" + std::to_string(b)).c_str());
    std::printf("\n");
    for (const char *m :
         {"vit_b", "vit_h", "swin_t", "detr", "segformer", "gpt2_xl",
          "bert", "resnet50"}) {
        std::printf("%-14s", m);
        for (int64_t batch : {1, 2, 4, 8, 16, 32}) {
            BenchConfig c;
            c.model = m;
            c.batch = batch;
            std::printf(" %7.1f%%", Bench::run(c).nonGemmPct());
        }
        std::printf("\n");
    }
    std::printf("\nShape: compute-heavy models (ViT-H, ResNet) amortize\n"
                "toward GEMM dominance; layout-bound models (Swin) and\n"
                "overhead-bound LLM prefill (GPT2-XL at seq 8) keep a\n"
                "large non-GEMM share at every batch size.\n");
    return 0;
}
