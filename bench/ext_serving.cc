/**
 * @file
 * Extension experiment: the latency/throughput frontier of the
 * serving layer (src/serve) — the regime the paper's "as deployed"
 * framing ultimately lands in, where queueing delay and batching
 * policy, not just kernel time, decide the latency a user sees.
 *
 * Part 1 sweeps the open-loop arrival rate at a fixed batching
 * policy: below saturation the queue share of p99 is small; past it,
 * queueing dominates and tail latency runs away while throughput
 * plateaus at engine capacity.
 *
 * Part 2 sweeps the batching policy (max_batch x batch_timeout_us)
 * at a fixed sub-saturation arrival rate, where the policy — not the
 * backlog — decides batch shape: a longer deadline accumulates bigger
 * batches (amortizing dispatch, and buying real throughput when the
 * pool has physical cores to batch across) at the price of batching
 * delay in p50; a short deadline closes partial batches early and
 * keeps latency near the single-request floor.
 *
 * `--smoke` runs a <=10 s subset for CI.
 */
#include <cstdio>
#include <cstring>

#include "bench_util.h"
#include "profiler/serve_report.h"
#include "serve/serve_driver.h"

using namespace ngb;

namespace {

constexpr int64_t kScale = 16;  // small graphs: the frontier, not FLOPs
constexpr int kThreads = 4;

void
printHeader()
{
    std::printf("%7s %6s %6s %9s %6s %9s %9s %9s %9s\n", "rps", "batch",
                "t_out", "served", "mean_b", "thru_rps", "p50_ms",
                "p99_ms", "p99_q_ms");
}

void
runPoint(double rps, int maxBatch, int64_t timeoutUs, double durationS,
         const std::vector<serve::MixEntry> &mix, ThreadPool &pool)
{
    serve::ServeConfig cfg;
    cfg.mix = mix;
    cfg.rps = rps;
    cfg.durationS = durationS;
    cfg.policy.maxBatch = maxBatch;
    cfg.policy.timeoutUs = timeoutUs;
    cfg.queueDepth = 4096;  // watch queueing, not load shedding
    cfg.engine.scale = kScale;
    cfg.seed = 42;

    serve::ServeResult res = serve::runServe(cfg, pool);
    const ServeStats &s = res.stats;
    std::vector<double> total, queue;
    for (const RequestRecord &r : s.requests) {
        total.push_back(r.totalUs());
        queue.push_back(r.queueUs);
    }
    std::printf("%7.0f %6d %6lld %9lld %6.2f %9.1f %9.2f %9.2f %9.2f\n",
                rps, maxBatch, static_cast<long long>(timeoutUs),
                static_cast<long long>(s.completed), s.meanBatchSize(),
                s.throughputRps(), percentile(total, 0.50) * 1e-3,
                percentile(total, 0.99) * 1e-3,
                percentile(queue, 0.99) * 1e-3);
}

}  // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    for (int i = 1; i < argc; ++i)
        if (std::strcmp(argv[i], "--smoke") == 0)
            smoke = true;

    ThreadPool pool(kThreads);
    const std::vector<serve::MixEntry> mixed = {{"vit_b", 3}, {"gpt2", 1}};
    const std::vector<serve::MixEntry> single = {{"vit_b", 1}};
    const double dur = smoke ? 0.8 : 1.5;

    std::printf("Extension: serving-layer latency/throughput frontier "
                "(scale 1/%lld, %d threads)%s\n",
                static_cast<long long>(kScale), kThreads,
                smoke ? "  [smoke]" : "");

    std::printf("\nPart 1: arrival-rate sweep, mix vit_b:3,gpt2:1 "
                "(max_batch 8, timeout 2000 us)\n");
    bench::printRule(76);
    printHeader();
    for (double rps : smoke ? std::vector<double>{20}
                            : std::vector<double>{10, 25, 50, 100})
        runPoint(rps, 8, 2000, dur, mixed, pool);

    const double policyRps = 15;  // below capacity: policy sets batches
    std::printf("\nPart 2: batch-policy sweep, vit_b only (rps %g, "
                "sub-saturation)\n",
                policyRps);
    bench::printRule(76);
    printHeader();
    for (int maxBatch : smoke ? std::vector<int>{1, 16}
                              : std::vector<int>{1, 4, 16}) {
        for (int64_t timeout :
             smoke ? std::vector<int64_t>{20000}
                   : std::vector<int64_t>{500, 5000, 20000}) {
            runPoint(policyRps, maxBatch, timeout, dur, single, pool);
            if (maxBatch == 1)
                break;  // deadline is moot for single-request batches
        }
    }

    std::printf(
        "\nShape: below saturation p99 tracks execute time and the\n"
        "queue share is small; past capacity the queue share of p99\n"
        "explodes while throughput plateaus at engine capacity. In\n"
        "the policy sweep, a longer deadline (or larger max_batch)\n"
        "grows mean batch size and p50 batching delay; wall-clock\n"
        "throughput gains from batching require physical cores for\n"
        "the pool to spread a batch across.\n");
    return 0;
}
