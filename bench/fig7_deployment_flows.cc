/**
 * @file
 * Reproduces Figure 7 (Case Study 1): the impact of the deployment
 * flow on LLM non-GEMM performance — PyTorch eager versus ONNX
 * Runtime's CUDA execution provider on GPT2-XL and Llama2 (A100).
 *
 * Shape to match: ORT lowers end-to-end latency (dramatically for
 * Llama2) but its unsupported memory operators fall back to the CPU,
 * so the Memory group balloons and non-GEMM share *increases*.
 */
#include <cstdio>

#include "bench_util.h"

using namespace ngb;

int
main()
{
    std::printf("Figure 7: PyTorch vs ONNX Runtime (Platform A, batch 1)\n");
    bench::printRule(100);
    bench::printCategoryHeader("model/flow");

    double pt_ng = 0, ort_ng = 0, pt_mem = 0, ort_mem = 0;
    for (const char *model : {"gpt2_xl", "llama2"}) {
        for (const char *flow : {"pytorch", "ort"}) {
            BenchConfig c;
            c.model = model;
            c.flow = flow;
            ProfileReport r = Bench::run(c);
            bench::printCategoryRow(std::string(model) + "/" + flow, r);
            if (std::string(flow) == "pytorch") {
                pt_ng += r.nonGemmPct() / 2;
                pt_mem += r.categoryPct(OpCategory::Memory) / 2;
            } else {
                ort_ng += r.nonGemmPct() / 2;
                ort_mem += r.categoryPct(OpCategory::Memory) / 2;
            }
        }
    }
    bench::printRule(100);
    std::printf("Average non-GEMM share: PyTorch %.1f%% -> ORT %.1f%%\n",
                pt_ng, ort_ng);
    std::printf("Average Memory share:   PyTorch %.1f%% -> ORT %.1f%%\n",
                pt_mem, ort_mem);
    std::printf("Paper reference: non-GEMM 52.6%% -> 80.75%%, Memory "
                "3.2%% -> 66.8%%\n(ORT memory ops unsupported by the CUDA "
                "EP fall back to the CPU).\n");
    return 0;
}
