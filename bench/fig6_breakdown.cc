/**
 * @file
 * Reproduces Figure 6: operator-granularity latency breakdowns of all
 * 17 models on both platforms, with and without GPU acceleration, at
 * batch 1 and 8. Also emits the per-row data as CSV on request
 * (pass --csv).
 */
#include <cstdio>
#include <cstring>
#include <string>

#include "bench_util.h"
#include "models/registry.h"

using namespace ngb;

int
main(int argc, char **argv)
{
    bool csv = argc > 1 && std::strcmp(argv[1], "--csv") == 0;

    if (csv) {
        std::printf("platform,device,model,batch,total_ms");
        for (OpCategory c : bench::figureCategories())
            std::printf(",%s", opCategoryName(c).c_str());
        std::printf("\n");
    }

    double cpu_share_sum = 0, gpu_share_sum = 0;
    int cpu_n = 0, gpu_n = 0;

    for (const char *platform : {"A", "B"}) {
        for (bool gpu : {false, true}) {
            if (!csv) {
                std::printf("\nFigure 6: Platform %s, %s\n", platform,
                            gpu ? "CPU+GPU" : "CPU only");
                bench::printRule(100);
                bench::printCategoryHeader("model/batch");
            }
            for (const std::string &name : models::paperModelNames()) {
                for (int64_t batch : {1, 8}) {
                    BenchConfig c;
                    c.model = name;
                    c.batch = batch;
                    c.platform = platform;
                    c.gpu = gpu;
                    ProfileReport r = Bench::run(c);
                    std::string label =
                        name + " b" + std::to_string(batch);
                    if (csv) {
                        std::printf("%s,%s,%s,%ld,%.3f", platform,
                                    gpu ? "cpu+gpu" : "cpu", name.c_str(),
                                    static_cast<long>(batch), r.totalMs());
                        for (OpCategory cat : bench::figureCategories())
                            std::printf(",%.2f", r.categoryPct(cat));
                        std::printf("\n");
                    } else {
                        bench::printCategoryRow(label, r);
                    }
                    if (gpu) {
                        gpu_share_sum += r.nonGemmPct();
                        ++gpu_n;
                    } else {
                        cpu_share_sum += r.nonGemmPct();
                        ++cpu_n;
                    }
                }
            }
        }
    }

    if (!csv) {
        bench::printRule(100);
        std::printf("Average non-GEMM share: CPU %.1f%%  CPU+GPU %.1f%%\n",
                    cpu_share_sum / cpu_n, gpu_share_sum / gpu_n);
        std::printf("Paper reference (Sec. IV-A): CPU 17.2%% -> CPU+GPU "
                    "42.3%% on average.\n");
    }
    return 0;
}
