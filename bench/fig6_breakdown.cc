/**
 * @file
 * Reproduces Figure 6: operator-granularity latency breakdowns of all
 * 17 models on both platforms, with and without GPU acceleration, at
 * batch 1 and 8. Also emits the per-row data as CSV on request
 * (pass --csv).
 *
 * After the modeled sweep (non-CSV mode), a measured companion table
 * executes every model through the BatchDriver with hardware-counter
 * sampling armed and prints the MEASURED GEMM/non-GEMM split next to
 * the modeled one, plus per-model cycles, IPC, and LLC MPKI. On hosts
 * where perf_event_open is unavailable the counter columns degrade to
 * "n/a" and the split column stays (it only needs the clock).
 */
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>

#include "bench_util.h"
#include "models/registry.h"
#include "obs/perf.h"
#include "runtime/batch_driver.h"
#include "runtime/request_util.h"
#include "runtime/thread_pool.h"

using namespace ngb;

namespace {

/** Modeled-vs-measured split for one model, counters attached. */
void
measuredRow(const std::string &name, ThreadPool &pool,
            double modeled_gemm_pct)
{
    const auto &info = models::findModel(name);
    ModelConfig mc;
    mc.batch = 1;
    mc.seqLen = 8;
    mc.testScale = 16;
    Graph g = info.build(mc);

    std::vector<std::vector<Tensor>> reqs;
    for (int r = 0; r < 2; ++r)
        reqs.push_back(
            makeRequestInputs(g, 99 + 31 * static_cast<uint64_t>(r)));

    BatchDriver driver(g, pool, buildEnginePlan(g), defaultBackend(),
                       /*arena=*/true);
    driver.run(reqs);  // warm-up: params, prepare, arena growth
    driver.run(reqs);
    const RuntimeProfile &p = driver.profile();

    double measured_gemm =
        p.sumUs > 0 ? 100.0 * p.gemmUs() / p.sumUs : 0.0;
    std::printf("%-14s %9.1f%% %9.1f%%", name.c_str(), modeled_gemm_pct,
                measured_gemm);
    if (p.perf.measured) {
        std::printf(" %12" PRIu64 " %6.2f %8.2f\n", p.perf.total.cycles,
                    p.perf.total.ipc(),
                    p.perf.total.missesPerKiloInstr());
    } else {
        std::printf(" %12s %6s %8s\n", "n/a", "n/a", "n/a");
    }
}

}  // namespace

int
main(int argc, char **argv)
{
    bool csv = argc > 1 && std::strcmp(argv[1], "--csv") == 0;

    if (csv) {
        std::printf("platform,device,model,batch,total_ms");
        for (OpCategory c : bench::figureCategories())
            std::printf(",%s", opCategoryName(c).c_str());
        std::printf("\n");
    }

    double cpu_share_sum = 0, gpu_share_sum = 0;
    int cpu_n = 0, gpu_n = 0;
    std::map<std::string, double> modeled_gemm_pct;  // platform A, CPU, b1

    for (const char *platform : {"A", "B"}) {
        for (bool gpu : {false, true}) {
            if (!csv) {
                std::printf("\nFigure 6: Platform %s, %s\n", platform,
                            gpu ? "CPU+GPU" : "CPU only");
                bench::printRule(100);
                bench::printCategoryHeader("model/batch");
            }
            for (const std::string &name : models::paperModelNames()) {
                for (int64_t batch : {1, 8}) {
                    BenchConfig c;
                    c.model = name;
                    c.batch = batch;
                    c.platform = platform;
                    c.gpu = gpu;
                    ProfileReport r = Bench::run(c);
                    std::string label =
                        name + " b" + std::to_string(batch);
                    if (csv) {
                        std::printf("%s,%s,%s,%ld,%.3f", platform,
                                    gpu ? "cpu+gpu" : "cpu", name.c_str(),
                                    static_cast<long>(batch), r.totalMs());
                        for (OpCategory cat : bench::figureCategories())
                            std::printf(",%.2f", r.categoryPct(cat));
                        std::printf("\n");
                    } else {
                        bench::printCategoryRow(label, r);
                    }
                    if (std::strcmp(platform, "A") == 0 && !gpu &&
                        batch == 1)
                        modeled_gemm_pct[name] = r.gemmPct();
                    if (gpu) {
                        gpu_share_sum += r.nonGemmPct();
                        ++gpu_n;
                    } else {
                        cpu_share_sum += r.nonGemmPct();
                        ++cpu_n;
                    }
                }
            }
        }
    }

    if (!csv) {
        bench::printRule(100);
        std::printf("Average non-GEMM share: CPU %.1f%%  CPU+GPU %.1f%%\n",
                    cpu_share_sum / cpu_n, gpu_share_sum / gpu_n);
        std::printf("Paper reference (Sec. IV-A): CPU 17.2%% -> CPU+GPU "
                    "42.3%% on average.\n");

        // Measured companion: the same models actually executed, with
        // the counter subsystem attributing cycles to kernel scopes.
        bool was_on = obs::perfEnabled();
        obs::setPerfEnabled(true);
        const obs::PerfCounterStats probe =
            obs::PerfAggregator::instance().totals();
        std::printf("\nMeasured split + hw counters (BatchDriver, "
                    "scale 16, batch 1, backend %s)\n",
                    defaultBackend().name().c_str());
        if (!probe.measured)
            std::printf("counters unavailable on this host (%s); "
                        "split columns still measured by clock\n",
                        probe.status.c_str());
        bench::printRule(64);
        std::printf("%-14s %10s %10s %12s %6s %8s\n", "model",
                    "model_gemm", "meas_gemm", "cycles", "IPC", "MPKI");
        ThreadPool pool(4);
        for (const std::string &name : models::paperModelNames())
            measuredRow(name, pool, modeled_gemm_pct[name]);
        bench::printRule(64);
        obs::setPerfEnabled(was_on);
    }
    return 0;
}
