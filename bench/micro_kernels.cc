/**
 * @file
 * Per-operator, per-backend microbenchmark of the real host kernels —
 * the wall-clock ground truth behind the backend API: for every hot
 * operator it times the reference kernel against the optimized
 * backend's kernel (and, where one exists, the explicit-SIMD kernel at
 * the active dispatch level) on a representative shape and reports
 * ns/op plus the speedups, so the GEMM/non-GEMM trajectory of the
 * paper can be tracked as kernels improve across PRs.
 *
 *   bench_micro_kernels                  # full table
 *   bench_micro_kernels --smoke          # tiny shapes, few reps (CI)
 *   bench_micro_kernels --json           # also write BENCH_kernels.json
 *   bench_micro_kernels --json FILE      # ... to a chosen path
 *   bench_micro_kernels --isa LEVEL      # force the SIMD dispatch level
 *   bench_micro_kernels --check          # exit 1 unless the GEMM rows
 *                                        # hit the acceptance bars
 *                                        # (forces representative shapes)
 *   bench_micro_kernels --expect-warm    # exit 1 if any tile tuning ran
 *                                        # (the $NGB_TUNE_CACHE file was
 *                                        # expected to satisfy every key)
 *   bench_micro_kernels --threads N      # also time the GEMM rows with
 *                                        # an N-worker ParallelRegion
 *                                        # (par_ns / par_x columns), so
 *                                        # per-kernel scaling regressions
 *                                        # are visible per ISA leg
 *
 * Timing method: repetitions are BATCHED between clock reads — the rep
 * count doubles until one batch is long enough to dwarf the clock-read
 * cost, so sub-microsecond kernels are not inflated by a Clock::now()
 * per call — and a measured empty-loop baseline (the cost of the
 * harness loop itself around an empty std::function) is subtracted.
 *
 * The JSON is machine-readable ({op, shape, backends.{name}.ns_per_op,
 * speedup, speedup_simd} plus the active isa and the tuning-cache
 * stats) so future PRs can diff per-op speedups mechanically.
 */
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

#include "ops/kernels.h"
#include "ops/optimized_kernels.h"
#include "ops/simd_backend.h"
#include "platform/cpu_features.h"
#include "platform/tuning_cache.h"
#include "quant/quant_kernels.h"
#include "quant/weight_pack.h"
#include "runtime/intraop.h"
#include "runtime/thread_pool.h"

using namespace ngb;
namespace kn = kernels;
namespace ko = kernels::opt;
namespace kq = kernels::qnt;
namespace sd = kernels::sd;

namespace {

using Clock = std::chrono::steady_clock;

struct BenchResult {
    std::string op;
    std::string shape;
    double refNs = 0;
    double optNs = 0;
    double simdNs = 0;  ///< 0 = no simd kernel for this op
    double parNs = 0;   ///< 0 = op not timed under a ParallelRegion

    double speedup() const { return optNs > 0 ? refNs / optNs : 0; }

    /** simd vs optimized — the bar the simd backend is held to. */
    double simdSpeedup() const
    {
        return simdNs > 0 ? optNs / simdNs : 0;
    }

    /** Sharded vs serial of the same kernel — intra-op scaling. The
     *  par lambda shards whichever kernel the ISA leg actually ships
     *  (simd when a simd variant exists, optimized otherwise), so the
     *  baseline follows suit. */
    double parSpeedup() const
    {
        double base = simdNs > 0 ? simdNs : optNs;
        return parNs > 0 ? base / parNs : 0;
    }
};

/** One timed batch: @p batch calls of @p fn between two clock reads. */
double
runBatchMs(const std::function<void()> &fn, int64_t batch)
{
    auto t0 = Clock::now();
    for (int64_t i = 0; i < batch; ++i)
        fn();
    return std::chrono::duration<double, std::milli>(Clock::now() - t0)
        .count();
}

/**
 * What the timing loop itself costs per iteration (loop bookkeeping +
 * one empty std::function dispatch), measured once. Subtracted from
 * every per-call figure so a 50 ns kernel is reported as ~50 ns, not
 * 50 ns plus harness overhead.
 */
double
emptyLoopNsPerCall()
{
    static const double ns = [] {
        std::function<void()> nop = [] {};
        const int64_t iters = 1 << 20;
        runBatchMs(nop, iters);  // warm-up (page in, branch-train)
        double best = runBatchMs(nop, iters);
        best = std::min(best, runBatchMs(nop, iters));
        return best * 1e6 / iters;
    }();
    return ns;
}

/**
 * Time @p fn: one warm-up call, then batched repetitions. The batch
 * size doubles until a single batch covers a measurable slice of the
 * budget (so the two Clock::now() reads bracketing it are noise), then
 * whole batches accumulate until @p minMs of wall time and @p minReps
 * calls are covered. Returns baseline-corrected ns per call.
 */
double
timeNs(const std::function<void()> &fn, double minMs, int minReps)
{
    fn();  // warm-up (first-touch, caches)
    double floorMs = std::max(minMs / 20.0, 0.05);
    int64_t batch = 1;
    double batchMs = runBatchMs(fn, batch);
    while (batchMs < floorMs && batch < (int64_t(1) << 24)) {
        batch *= 2;
        batchMs = runBatchMs(fn, batch);
    }
    double totalMs = batchMs;
    int64_t calls = batch;
    while (calls < minReps || totalMs < minMs) {
        totalMs += runBatchMs(fn, batch);
        calls += batch;
    }
    double ns = totalMs * 1e6 / calls - emptyLoopNsPerCall();
    return ns > 0 ? ns : 0;
}

class Harness
{
  public:
    Harness(bool smoke, int threads)
        : smoke_(smoke), threads_(threads)
    {
    }

    int threads() const { return threads_; }

    void add(const std::string &op, const std::string &shape,
             std::function<void()> ref, std::function<void()> opt,
             std::function<void()> simd = nullptr,
             std::function<void()> par = nullptr)
    {
        double minMs = smoke_ ? 5 : 100;
        int minReps = smoke_ ? 2 : 5;
        BenchResult r;
        r.op = op;
        r.shape = shape;
        r.refNs = timeNs(ref, minMs, minReps);
        r.optNs = timeNs(opt, minMs, minReps);
        if (simd)
            r.simdNs = timeNs(simd, minMs, minReps);
        if (par && threads_ > 1)
            r.parNs = timeNs(par, minMs, minReps);
        results_.push_back(r);
        char simdNs[32], simdX[16], parNs[32], parX[16];
        if (simd) {
            std::snprintf(simdNs, sizeof simdNs, "%14.0f", r.simdNs);
            std::snprintf(simdX, sizeof simdX, "%8.2fx",
                          r.simdSpeedup());
        } else {
            std::snprintf(simdNs, sizeof simdNs, "%14s", "-");
            std::snprintf(simdX, sizeof simdX, "%9s", "-");
        }
        if (r.parNs > 0) {
            std::snprintf(parNs, sizeof parNs, "%12.0f", r.parNs);
            std::snprintf(parX, sizeof parX, "%7.2fx", r.parSpeedup());
        } else {
            std::snprintf(parNs, sizeof parNs, "%12s", "-");
            std::snprintf(parX, sizeof parX, "%8s", "-");
        }
        std::printf("%-14s %-18s %14.0f %14.0f %8.2fx %s %s %s %s\n",
                    op.c_str(), shape.c_str(), r.refNs, r.optNs,
                    r.speedup(), simdNs, simdX, parNs, parX);
        std::fflush(stdout);
    }

    const std::vector<BenchResult> &results() const { return results_; }

    void writeJson(const std::string &path) const
    {
        const simd::TuneStats ts = simd::TuningCache::process().stats();
        std::ofstream f(path);
        f << "{\n  \"bench\": \"micro_kernels\",\n  \"smoke\": "
          << (smoke_ ? "true" : "false") << ",\n  \"isa\": \""
          << platform::isaName(platform::activeIsa())
          << "\",\n  \"tuning\": {\"tune_runs\": " << ts.tuneRuns
          << ", \"tuned_keys\": " << ts.tunedKeys
          << ", \"replays\": " << ts.replays << ", \"entries\": "
          << simd::TuningCache::process().entries()
          << "},\n  \"threads\": " << threads_ << ",\n  \"ops\": [\n";
        for (size_t i = 0; i < results_.size(); ++i) {
            const BenchResult &r = results_[i];
            f << "    {\"op\": \"" << r.op << "\", \"shape\": \""
              << r.shape << "\", \"backends\": {\"reference\": "
              << "{\"ns_per_op\": " << r.refNs
              << "}, \"optimized\": {\"ns_per_op\": " << r.optNs << "}";
            if (r.simdNs > 0)
                f << ", \"simd\": {\"ns_per_op\": " << r.simdNs << "}";
            f << "}, \"speedup\": " << r.speedup();
            if (r.simdNs > 0)
                f << ", \"speedup_simd\": " << r.simdSpeedup();
            if (r.parNs > 0)
                f << ", \"par_ns_per_op\": " << r.parNs
                  << ", \"speedup_par\": " << r.parSpeedup();
            f << "}" << (i + 1 < results_.size() ? "," : "") << "\n";
        }
        f << "  ]\n}\n";
        std::printf("wrote %s\n", path.c_str());
    }

  private:
    bool smoke_;
    int threads_;
    std::vector<BenchResult> results_;
};

std::string
dims(std::initializer_list<int64_t> ds)
{
    std::string s;
    for (int64_t d : ds)
        s += (s.empty() ? "" : "x") + std::to_string(d);
    return s;
}

bool
knownFlag(const std::string &a)
{
    return a == "--smoke" || a == "--check" || a == "--json" ||
           a == "--isa" || a == "--expect-warm" || a == "--threads";
}

}  // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    bool json = false;
    bool check = false;
    bool expectWarm = false;
    int threads = 1;
    std::string jsonPath = "BENCH_kernels.json";
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        if (a == "--smoke") {
            smoke = true;
        } else if (a == "--check") {
            check = true;
        } else if (a == "--expect-warm") {
            expectWarm = true;
        } else if (a == "--isa") {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "missing value for --isa\n");
                return 2;
            }
            try {
                platform::setActiveIsaName(argv[++i]);
            } catch (const std::exception &e) {
                std::fprintf(stderr, "%s\n", e.what());
                return 2;
            }
        } else if (a == "--threads") {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "missing value for --threads\n");
                return 2;
            }
            threads = std::atoi(argv[++i]);
            if (threads < 1) {
                std::fprintf(stderr, "--threads wants a count >= 1\n");
                return 2;
            }
        } else if (a == "--json") {
            json = true;
            // The next token is a path unless it is one of our flags —
            // paths beginning with '-' (or named like anything else)
            // are legitimate.
            if (i + 1 < argc && !knownFlag(argv[i + 1]))
                jsonPath = argv[++i];
        } else {
            std::fprintf(stderr,
                         "usage: bench_micro_kernels [--smoke] "
                         "[--check] [--json [FILE]] [--isa LEVEL] "
                         "[--expect-warm] [--threads N]\n");
            return 2;
        }
    }
    if (check && smoke) {
        // The acceptance bars are calibrated on the representative
        // shapes; checking smoke shapes would pass/fail on noise.
        std::printf("note: --check forces representative shapes "
                    "(--smoke ignored)\n");
        smoke = false;
    }

    const char *isa = platform::isaName(platform::activeIsa());
    std::printf("micro_kernels: reference vs optimized vs simd[%s] "
                "(%s shapes, %d intra-op thread%s)\n",
                isa, smoke ? "smoke" : "representative", threads,
                threads == 1 ? "" : "s");
    std::printf("%-14s %-18s %14s %14s %9s %14s %9s %12s %8s\n", "op",
                "shape", "ref_ns", "opt_ns", "opt_x", "simd_ns",
                "simd_x", "par_ns", "par_x");

    Harness h(smoke, threads);

    // The GEMM rows also time the shipping kernel (simd where one
    // exists, optimized otherwise) under an N-worker region when
    // --threads asks for it; par lambdas are skipped at --threads 1.
    ThreadPool parPool(threads);
    ParallelRegion region(&parPool);
    const ParallelRegion *par = &region;

    // ---- GEMM family ----------------------------------------------------
    {
        int64_t n = smoke ? 64 : 256;
        Tensor a = Tensor::randn(Shape{n, n}, 1);
        Tensor b = Tensor::randn(Shape{n, n}, 2);
        h.add("matmul", dims({n, n, n}),
              [=] { kn::matmul(a, b); }, [=] { ko::matmul(a, b); },
              [=] { sd::matmul(a, b); },
              [=] { sd::matmul(a, b, {}, par); });
    }
    {
        int64_t m = smoke ? 32 : 128;
        int64_t k = smoke ? 64 : 512;
        Tensor x = Tensor::randn(Shape{m, k}, 3);
        Tensor w = Tensor::randn(Shape{k, k}, 4);
        Tensor b = Tensor::randn(Shape{k}, 5);
        h.add("linear", dims({m, k, k}),
              [=] { kn::linear(x, w, b); }, [=] { ko::linear(x, w, b); });
        // The engine hot path: the backend memoizes the weight pack
        // per node (ParamStore::derived), so per-request cost is
        // linearPacked alone. Pack outside the timed lambda.
        Tensor wt = ko::packWeightTranspose(w);
        h.add("linear_packed", dims({m, k, k}),
              [=] { kn::linear(x, w, b); },
              [=] { ko::linearPacked(x, wt, b); },
              [=] { sd::linearPacked(x, wt, b); },
              [=] { sd::linearPacked(x, wt, b, {}, par); });
    }
    {
        int64_t t = smoke ? 49 : 197;
        Tensor a = Tensor::randn(Shape{12, t, 64}, 6);
        Tensor b = Tensor::randn(Shape{12, 64, t}, 7);
        h.add("bmm", dims({12, t, 64, t}),
              [=] { kn::bmm(a, b); }, [=] { ko::bmm(a, b); },
              [=] { sd::bmm(a, b); },
              [=] { sd::bmm(a, b, {}, par); });
    }
    {
        // The executable-quantization hot path: reference = the naive
        // row-layout int8 GEMM, optimized = the tiled packed kernel,
        // simd = the VNNI/sdot (or widening) kernel over its own
        // layout. All three requantize identically; packing happens
        // outside the timed lambdas like linear_packed above.
        int64_t m = smoke ? 32 : 128;
        int64_t k = smoke ? 64 : 512;
        Tensor x = Tensor::randn(Shape{m, k}, 14);
        Tensor w = Tensor::randn(Shape{k, k}, 15);
        Tensor bias = Tensor::randn(Shape{k}, 16);
        auto [xq, xs] = kq::quantizeActivation(x);
        float xScale = kq::scaleValue(xs);
        Tensor scales = quant::perChannelScales(w);
        Tensor wq = quant::quantizeWeightRows(w, scales);
        Tensor wtq = quant::packWeightInt8(w, scales);
        Tensor wsd = sd::packInt8Weight(wtq);
        h.add("int8_linear", dims({m, k, k}),
              [=, xq = xq] {
                  kq::int8LinearRequant(xq, xScale, wq, scales, bias,
                                        nullptr, 0);
              },
              [=, xq = xq] {
                  kq::int8LinearPackedRequant(xq, xScale, wtq, scales,
                                              bias, nullptr, 0);
              },
              [=, xq = xq] {
                  sd::int8LinearRequant(xq, xScale, wsd, scales, bias);
              },
              [=, xq = xq] {
                  sd::int8LinearRequant(xq, xScale, wsd, scales, bias,
                                        {}, par);
              });
    }

    // ---- Normalization --------------------------------------------------
    {
        int64_t d = smoke ? 256 : 1600;
        Tensor x = Tensor::randn(Shape{197, d}, 8);
        Tensor g = Tensor::full(Shape{d}, 1.0f);
        Tensor b = Tensor::zeros(Shape{d});
        h.add("layer_norm", dims({197, d}),
              [=] { kn::layerNorm(x, g, b, 1e-5f); },
              [=] { ko::layerNorm(x, g, b, 1e-5f); },
              [=] { sd::layerNorm(x, g, b, 1e-5f); });
    }
    {
        int64_t c = smoke ? 8 : 64;
        int64_t hw = smoke ? 14 : 56;
        Tensor x = Tensor::randn(Shape{1, c, hw, hw}, 9);
        Tensor g = Tensor::full(Shape{c}, 1.0f);
        Tensor b = Tensor::zeros(Shape{c});
        Tensor m = Tensor::zeros(Shape{c});
        Tensor v = Tensor::full(Shape{c}, 1.0f);
        h.add("batch_norm2d", dims({1, c, hw, hw}),
              [=] { kn::batchNorm2d(x, g, b, m, v, 1e-5f); },
              [=] { ko::batchNorm2d(x, g, b, m, v, 1e-5f); });
    }

    // ---- Logit computation ----------------------------------------------
    {
        int64_t t = smoke ? 16 : 64;
        Tensor x = Tensor::randn(Shape{25, t, t}, 10);
        h.add("softmax", dims({25, t, t}),
              [=] { kn::softmax(x, -1); }, [=] { ko::softmax(x, -1); });
    }

    // ---- Elementwise ----------------------------------------------------
    int64_t n = smoke ? (1 << 12) : (1 << 16);
    {
        Tensor x = Tensor::randn(Shape{n}, 11);
        h.add("gelu", dims({n}), [=] { kn::gelu(x); },
              [=] { ko::gelu(x); });
        h.add("relu", dims({n}), [=] { kn::relu(x); },
              [=] { ko::relu(x); }, [=] { sd::relu(x); });
        h.add("silu", dims({n}), [=] { kn::silu(x); },
              [=] { ko::silu(x); });
    }
    {
        Tensor a = Tensor::randn(Shape{n}, 12);
        Tensor b = Tensor::randn(Shape{n}, 13);
        h.add("add", dims({n}), [=] { kn::add(a, b); },
              [=] { ko::add(a, b); }, [=] { sd::add(a, b); });
        h.add("mul", dims({n}), [=] { kn::mul(a, b); },
              [=] { ko::mul(a, b); }, [=] { sd::mul(a, b); });
    }

    if (json)
        h.writeJson(jsonPath);

    // Acceptance bars, informational by default (bench hosts are
    // noisy); --check turns a miss into a nonzero exit so CI can
    // enforce them mechanically:
    //  - optimized: matmul and linear at least 2x over reference on
    //    the representative shapes (actual margin ~4x).
    //  - simd: no slower than optimized (>= 1.0x) on the GEMM rows,
    //    whenever a SIMD level is actually active — at scalar dispatch
    //    the simd entries ARE the optimized kernels and the bar is
    //    meaningless.
    bool ok = true;
    for (const BenchResult &r : h.results())
        if ((r.op == "matmul" || r.op == "linear") && r.speedup() < 2.0) {
            ok = false;
            std::printf("%s: %s ref->opt %.2fx below the 2x bar\n",
                        check ? "FAIL" : "note", r.op.c_str(),
                        r.speedup());
        }
    if (platform::activeIsa() != platform::IsaLevel::Scalar)
        for (const BenchResult &r : h.results())
            if ((r.op == "matmul" || r.op == "linear_packed" ||
                 r.op == "bmm" || r.op == "int8_linear") &&
                r.simdNs > 0 && r.simdSpeedup() < 1.0) {
                ok = false;
                std::printf("%s: %s simd %.2fx slower than optimized\n",
                            check ? "FAIL" : "note", r.op.c_str(),
                            1.0 / r.simdSpeedup());
            }
    if (expectWarm) {
        const simd::TuneStats ts = simd::TuningCache::process().stats();
        if (ts.tuneRuns > 0) {
            ok = false;
            std::printf("FAIL: --expect-warm but %llu tuning runs "
                        "happened (%llu keys missed the cache)\n",
                        static_cast<unsigned long long>(ts.tuneRuns),
                        static_cast<unsigned long long>(ts.tunedKeys));
        } else {
            std::printf("tuning cache warm: %llu replays, 0 tune runs\n",
                        static_cast<unsigned long long>(ts.replays));
        }
    }
    return (check || expectWarm) && !ok ? 1 : 0;
}
