/**
 * @file
 * Per-operator, per-backend microbenchmark of the real host kernels —
 * the wall-clock ground truth behind the backend API: for every hot
 * operator it times the reference kernel against the optimized
 * backend's kernel on a representative shape and reports ns/op plus
 * the speedup, so the GEMM/non-GEMM trajectory of the paper can be
 * tracked as kernels improve across PRs.
 *
 *   bench_micro_kernels                  # full table
 *   bench_micro_kernels --smoke          # tiny shapes, few reps (CI)
 *   bench_micro_kernels --json           # also write BENCH_kernels.json
 *   bench_micro_kernels --json FILE      # ... to a chosen path
 *   bench_micro_kernels --check          # exit 1 unless the GEMM rows
 *                                        # hit the 2x acceptance bar
 *
 * The JSON is machine-readable ({op, shape, backends.{name}.ns_per_op,
 * speedup}) so future PRs can diff per-op speedups mechanically.
 */
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

#include "ops/kernels.h"
#include "ops/optimized_kernels.h"

using namespace ngb;
namespace kn = kernels;
namespace ko = kernels::opt;

namespace {

using Clock = std::chrono::steady_clock;

struct BenchResult {
    std::string op;
    std::string shape;
    double refNs = 0;
    double optNs = 0;

    double speedup() const { return optNs > 0 ? refNs / optNs : 0; }
};

/**
 * Time @p fn: one warm-up call, then enough repetitions to cover
 * @p minMs of wall time (at least @p minReps). Returns ns per call.
 */
double
timeNs(const std::function<void()> &fn, double minMs, int minReps)
{
    fn();  // warm-up (first-touch, caches)
    int reps = 0;
    auto t0 = Clock::now();
    double elapsedMs = 0;
    while (reps < minReps || elapsedMs < minMs) {
        fn();
        ++reps;
        elapsedMs = std::chrono::duration<double, std::milli>(
                        Clock::now() - t0)
                        .count();
    }
    return elapsedMs * 1e6 / reps;
}

class Harness
{
  public:
    Harness(bool smoke) : smoke_(smoke) {}

    void add(const std::string &op, const std::string &shape,
             std::function<void()> ref, std::function<void()> opt)
    {
        double minMs = smoke_ ? 5 : 100;
        int minReps = smoke_ ? 2 : 5;
        BenchResult r;
        r.op = op;
        r.shape = shape;
        r.refNs = timeNs(ref, minMs, minReps);
        r.optNs = timeNs(opt, minMs, minReps);
        results_.push_back(r);
        std::printf("%-14s %-18s %14.0f %14.0f %8.2fx\n", op.c_str(),
                    shape.c_str(), r.refNs, r.optNs, r.speedup());
        std::fflush(stdout);
    }

    const std::vector<BenchResult> &results() const { return results_; }

    void writeJson(const std::string &path) const
    {
        std::ofstream f(path);
        f << "{\n  \"bench\": \"micro_kernels\",\n  \"smoke\": "
          << (smoke_ ? "true" : "false") << ",\n  \"ops\": [\n";
        for (size_t i = 0; i < results_.size(); ++i) {
            const BenchResult &r = results_[i];
            f << "    {\"op\": \"" << r.op << "\", \"shape\": \""
              << r.shape << "\", \"backends\": {\"reference\": "
              << "{\"ns_per_op\": " << r.refNs
              << "}, \"optimized\": {\"ns_per_op\": " << r.optNs
              << "}}, \"speedup\": " << r.speedup() << "}"
              << (i + 1 < results_.size() ? "," : "") << "\n";
        }
        f << "  ]\n}\n";
        std::printf("wrote %s\n", path.c_str());
    }

  private:
    bool smoke_;
    std::vector<BenchResult> results_;
};

std::string
dims(std::initializer_list<int64_t> ds)
{
    std::string s;
    for (int64_t d : ds)
        s += (s.empty() ? "" : "x") + std::to_string(d);
    return s;
}

}  // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    bool json = false;
    bool check = false;
    std::string jsonPath = "BENCH_kernels.json";
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        if (a == "--smoke") {
            smoke = true;
        } else if (a == "--check") {
            check = true;
        } else if (a == "--json") {
            json = true;
            if (i + 1 < argc && argv[i + 1][0] != '-')
                jsonPath = argv[++i];
        } else {
            std::fprintf(stderr,
                         "usage: bench_micro_kernels [--smoke] "
                         "[--check] [--json [FILE]]\n");
            return 2;
        }
    }

    std::printf("micro_kernels: reference vs optimized backend "
                "(%s shapes)\n",
                smoke ? "smoke" : "representative");
    std::printf("%-14s %-18s %14s %14s %9s\n", "op", "shape", "ref_ns",
                "opt_ns", "speedup");

    Harness h(smoke);

    // ---- GEMM family ----------------------------------------------------
    {
        int64_t n = smoke ? 64 : 256;
        Tensor a = Tensor::randn(Shape{n, n}, 1);
        Tensor b = Tensor::randn(Shape{n, n}, 2);
        h.add("matmul", dims({n, n, n}),
              [=] { kn::matmul(a, b); }, [=] { ko::matmul(a, b); });
    }
    {
        int64_t m = smoke ? 32 : 128;
        int64_t k = smoke ? 64 : 512;
        Tensor x = Tensor::randn(Shape{m, k}, 3);
        Tensor w = Tensor::randn(Shape{k, k}, 4);
        Tensor b = Tensor::randn(Shape{k}, 5);
        h.add("linear", dims({m, k, k}),
              [=] { kn::linear(x, w, b); }, [=] { ko::linear(x, w, b); });
        // The engine hot path: the backend memoizes the weight pack
        // per node (ParamStore::derived), so per-request cost is
        // linearPacked alone. Pack outside the timed lambda.
        Tensor wt = ko::packWeightTranspose(w);
        h.add("linear_packed", dims({m, k, k}),
              [=] { kn::linear(x, w, b); },
              [=] { ko::linearPacked(x, wt, b); });
    }
    {
        int64_t t = smoke ? 49 : 197;
        Tensor a = Tensor::randn(Shape{12, t, 64}, 6);
        Tensor b = Tensor::randn(Shape{12, 64, t}, 7);
        h.add("bmm", dims({12, t, 64, t}),
              [=] { kn::bmm(a, b); }, [=] { ko::bmm(a, b); });
    }

    // ---- Normalization --------------------------------------------------
    {
        int64_t d = smoke ? 256 : 1600;
        Tensor x = Tensor::randn(Shape{197, d}, 8);
        Tensor g = Tensor::full(Shape{d}, 1.0f);
        Tensor b = Tensor::zeros(Shape{d});
        h.add("layer_norm", dims({197, d}),
              [=] { kn::layerNorm(x, g, b, 1e-5f); },
              [=] { ko::layerNorm(x, g, b, 1e-5f); });
    }
    {
        int64_t c = smoke ? 8 : 64;
        int64_t hw = smoke ? 14 : 56;
        Tensor x = Tensor::randn(Shape{1, c, hw, hw}, 9);
        Tensor g = Tensor::full(Shape{c}, 1.0f);
        Tensor b = Tensor::zeros(Shape{c});
        Tensor m = Tensor::zeros(Shape{c});
        Tensor v = Tensor::full(Shape{c}, 1.0f);
        h.add("batch_norm2d", dims({1, c, hw, hw}),
              [=] { kn::batchNorm2d(x, g, b, m, v, 1e-5f); },
              [=] { ko::batchNorm2d(x, g, b, m, v, 1e-5f); });
    }

    // ---- Logit computation ----------------------------------------------
    {
        int64_t t = smoke ? 16 : 64;
        Tensor x = Tensor::randn(Shape{25, t, t}, 10);
        h.add("softmax", dims({25, t, t}),
              [=] { kn::softmax(x, -1); }, [=] { ko::softmax(x, -1); });
    }

    // ---- Elementwise ----------------------------------------------------
    int64_t n = smoke ? (1 << 12) : (1 << 16);
    {
        Tensor x = Tensor::randn(Shape{n}, 11);
        h.add("gelu", dims({n}), [=] { kn::gelu(x); },
              [=] { ko::gelu(x); });
        h.add("relu", dims({n}), [=] { kn::relu(x); },
              [=] { ko::relu(x); });
        h.add("silu", dims({n}), [=] { kn::silu(x); },
              [=] { ko::silu(x); });
    }
    {
        Tensor a = Tensor::randn(Shape{n}, 12);
        Tensor b = Tensor::randn(Shape{n}, 13);
        h.add("add", dims({n}), [=] { kn::add(a, b); },
              [=] { ko::add(a, b); });
        h.add("mul", dims({n}), [=] { kn::mul(a, b); },
              [=] { ko::mul(a, b); });
    }

    if (json)
        h.writeJson(jsonPath);

    // The acceptance bar for the optimized backend: matmul and linear
    // must be at least 2x on the representative shapes. Informational
    // by default (bench hosts are noisy); --check turns a miss into a
    // nonzero exit so CI can enforce the bar mechanically. The actual
    // margin is ~4x, so 2x has headroom against shared-runner noise.
    bool ok = true;
    for (const BenchResult &r : h.results())
        if ((r.op == "matmul" || r.op == "linear") && r.speedup() < 2.0)
            ok = false;
    if (!ok)
        std::printf("%s: matmul/linear below the 2x acceptance bar on "
                    "this host\n",
                    check ? "FAIL" : "note");
    if (check && smoke)
        std::printf("note: --check measured smoke shapes, not the "
                    "representative ones\n");
    return check && !ok ? 1 : 0;
}
