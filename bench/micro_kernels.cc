/**
 * @file
 * google-benchmark microbenchmarks of the real host kernels backing
 * the framework — a supplementary, wall-clock counterpart to the
 * analytical model: even on a CPU, GEMM ops dominate per-element cost
 * while the non-GEMM inventory is bandwidth / overhead bound.
 */
#include <benchmark/benchmark.h>

#include "ops/kernels.h"

using namespace ngb;
namespace kn = kernels;

static void
BM_Linear(benchmark::State &state)
{
    int64_t d = state.range(0);
    Tensor x = Tensor::randn(Shape{8, d}, 1);
    Tensor w = Tensor::randn(Shape{d, d}, 2);
    for (auto _ : state)
        benchmark::DoNotOptimize(kn::linear(x, w, Tensor()));
    state.SetItemsProcessed(state.iterations() * 8 * d * d * 2);
}
BENCHMARK(BM_Linear)->Arg(64)->Arg(128)->Arg(256);

static void
BM_Conv2d(benchmark::State &state)
{
    int64_t c = state.range(0);
    Tensor x = Tensor::randn(Shape{1, c, 28, 28}, 3);
    Tensor w = Tensor::randn(Shape{c, c, 3, 3}, 4);
    for (auto _ : state)
        benchmark::DoNotOptimize(kn::conv2d(x, w, Tensor(), 1, 1));
}
BENCHMARK(BM_Conv2d)->Arg(8)->Arg(16)->Arg(32);

static void
BM_BMM(benchmark::State &state)
{
    int64_t t = state.range(0);
    Tensor a = Tensor::randn(Shape{12, t, 64}, 5);
    Tensor b = Tensor::randn(Shape{12, 64, t}, 6);
    for (auto _ : state)
        benchmark::DoNotOptimize(kn::bmm(a, b));
}
BENCHMARK(BM_BMM)->Arg(49)->Arg(197);

static void
BM_LayerNorm(benchmark::State &state)
{
    int64_t d = state.range(0);
    Tensor x = Tensor::randn(Shape{197, d}, 7);
    Tensor g = Tensor::full(Shape{d}, 1.0f);
    Tensor b = Tensor::zeros(Shape{d});
    for (auto _ : state)
        benchmark::DoNotOptimize(kn::layerNorm(x, g, b, 1e-5f));
    state.SetBytesProcessed(state.iterations() * 197 * d * 8);
}
BENCHMARK(BM_LayerNorm)->Arg(768)->Arg(1600)->Arg(4096);

static void
BM_Softmax(benchmark::State &state)
{
    int64_t t = state.range(0);
    Tensor x = Tensor::randn(Shape{25, t, t}, 8);
    for (auto _ : state)
        benchmark::DoNotOptimize(kn::softmax(x, -1));
}
BENCHMARK(BM_Softmax)->Arg(8)->Arg(64)->Arg(128);

static void
BM_Gelu(benchmark::State &state)
{
    Tensor x = Tensor::randn(Shape{state.range(0)}, 9);
    for (auto _ : state)
        benchmark::DoNotOptimize(kn::gelu(x));
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Gelu)->Arg(1 << 12)->Arg(1 << 16);

static void
BM_Relu(benchmark::State &state)
{
    Tensor x = Tensor::randn(Shape{state.range(0)}, 10);
    for (auto _ : state)
        benchmark::DoNotOptimize(kn::relu(x));
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Relu)->Arg(1 << 12)->Arg(1 << 16);

static void
BM_Nms(benchmark::State &state)
{
    int64_t n = state.range(0);
    Tensor boxes = Tensor::randn(Shape{n, 4}, 11, 10.0f);
    for (int64_t i = 0; i < n; ++i) {
        boxes.set({i, 2}, boxes.at({i, 0}) + 5.0f);
        boxes.set({i, 3}, boxes.at({i, 1}) + 5.0f);
    }
    Tensor scores = Tensor::randn(Shape{n}, 12);
    for (auto _ : state)
        benchmark::DoNotOptimize(kn::nms(boxes, scores, 0.5f, 0.0f));
}
BENCHMARK(BM_Nms)->Arg(256)->Arg(1024);

static void
BM_Roll(benchmark::State &state)
{
    Tensor x = Tensor::randn(Shape{1, 56, 56, state.range(0)}, 13);
    for (auto _ : state)
        benchmark::DoNotOptimize(kn::roll(x, 3, 1));
}
BENCHMARK(BM_Roll)->Arg(32)->Arg(96);

static void
BM_Interpolate(benchmark::State &state)
{
    Tensor x = Tensor::randn(Shape{1, 16, 32, 32}, 14);
    for (auto _ : state)
        benchmark::DoNotOptimize(
            kn::interpolateBilinear(x, state.range(0), state.range(0)));
}
BENCHMARK(BM_Interpolate)->Arg(64)->Arg(128);

static void
BM_Int8Linear(benchmark::State &state)
{
    int64_t d = state.range(0);
    Tensor x = Tensor::randn(Shape{8, d}, 15);
    Tensor w = Tensor::randn(Shape{d, d}, 16);
    float xs = kn::absmaxScale(x);
    float ws = kn::absmaxScale(w);
    Tensor xq = kn::quantize(x, xs);
    Tensor wq = kn::quantize(w, ws);
    for (auto _ : state)
        benchmark::DoNotOptimize(kn::int8Linear(xq, wq, Tensor(), xs, ws));
}
BENCHMARK(BM_Int8Linear)->Arg(64)->Arg(256);

BENCHMARK_MAIN();
