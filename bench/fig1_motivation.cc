/**
 * @file
 * Reproduces Figure 1: the motivational GEMM / non-GEMM latency split
 * for GPT2-XL and Swin Transformer Base on the data-center platform
 * (AMD EPYC 7763 + NVIDIA A100), with and without GPU acceleration.
 *
 * Paper shape to match: on CPU the GEMM operators dominate; with the
 * GPU the non-GEMM share grows to (roughly) half of the latency.
 */
#include <cstdio>

#include "bench_util.h"

using namespace ngb;

int
main()
{
    std::printf("Figure 1: latency split on Platform A "
                "(EPYC 7763 + A100), batch 1\n");
    bench::printRule(72);
    std::printf("%-12s %-10s %10s %8s %8s\n", "model", "device",
                "total_ms", "GEMM%", "nonGEMM%");
    for (const char *model : {"gpt2_xl", "swin_b"}) {
        for (bool gpu : {false, true}) {
            BenchConfig c;
            c.model = model;
            c.gpu = gpu;
            ProfileReport r = Bench::run(c);
            std::printf("%-12s %-10s %10.2f %7.1f%% %7.1f%%\n", model,
                        gpu ? "CPU+GPU" : "CPU", r.totalMs(), r.gemmPct(),
                        r.nonGemmPct());
        }
    }
    std::printf("\nPaper reference (Fig. 1): GPU acceleration moves the\n"
                "non-GEMM share from a minority on CPU to roughly half of\n"
                "the end-to-end latency on both models.\n");
    return 0;
}
