/**
 * @file
 * Intra-op scaling benchmark: does handing pool threads to the GEMM
 * macro-tile loops actually buy single-request latency? For every
 * registry model the harness runs ONE request (the latency-bound
 * regime where wavefront width cannot feed the pool) through the same
 * shared EnginePlan under five configurations —
 *
 *  - off@1 / off@8: intra-op disabled on a 1- and 8-worker pool (the
 *    pre-intra-op shape; off@8 vs off@1 prices the seam itself);
 *  - on@1 / on@2 / on@8: intra-op enabled, kernels shard across the
 *    pool via the whole-request ParallelRegion;
 *
 * interleaving configurations round-robin per round so drift hits all
 * five equally, then comparing per-config median wall times. Outputs
 * must stay bit-identical across every configuration — sharding
 * splits M/N iteration space, never the K reduction.
 *
 * `--check` enforces the CI bars:
 *  - >=2.0x median single-request speedup (off@8 / on@8) on at least
 *    3 GEMM-dominated models (>=50% measured GEMM kernel time) — a
 *    wall-clock bar that needs real parallel hardware, so it is
 *    enforced only when hardware_concurrency >= 8 and reported as
 *    SKIPPED (loudly, without failing) on narrower machines;
 *  - intra-op off costs nothing: aggregate off@8 <= 1.03x off@1;
 *  - bit-identical outputs everywhere.
 *
 * `--json FILE` writes BENCH_intraop.json. `--smoke` runs a fast
 * three-model subset with fewer rounds.
 */
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "models/registry.h"
#include "runtime/batch_driver.h"
#include "runtime/intraop.h"
#include "runtime/request_util.h"
#include "runtime/thread_pool.h"

using namespace ngb;

namespace {

enum Config { kOff1 = 0, kOff8 = 1, kOn1 = 2, kOn2 = 3, kOn8 = 4 };
constexpr int kConfigs = 5;
const char *kConfigName[kConfigs] = {"off@1", "off@8", "on@1", "on@2",
                                     "on@8"};

/** The backend whose GEMMs shard: intra-op lives in the optimized and
 *  simd tile loops, so a reference-backend default (no $NGB_BACKEND)
 *  would measure nothing — fall through to optimized. */
const Backend &
benchBackend()
{
    const Backend &d = defaultBackend();
    return d.name() == "reference" ? optimizedBackend() : d;
}

struct ModelScaling {
    std::string model;
    double medianUs[kConfigs] = {0, 0, 0, 0, 0};
    double gemmShare = 0;  ///< measured GEMM fraction of kernel time
    bool bitIdentical = false;

    double speedup8() const
    {
        return medianUs[kOn8] > 0 ? medianUs[kOff8] / medianUs[kOn8]
                                  : 0.0;
    }
    /** Fraction of perfect 8-way scaling the on@8 point reaches. */
    double efficiency8() const { return speedup8() / 8.0; }
    bool gemmDominated() const { return gemmShare >= 0.5; }
};

double
median(std::vector<double> v)
{
    std::sort(v.begin(), v.end());
    return v.empty() ? 0 : v[v.size() / 2];
}

ModelScaling
measureModel(const std::string &name, int rounds)
{
    const auto &info = models::findModel(name);
    ModelConfig mc;
    mc.batch = 1;
    mc.seqLen = 8;
    mc.testScale = 8;
    Graph g = info.build(mc);
    std::vector<std::vector<Tensor>> reqs = {makeRequestInputs(g, 1234)};

    ModelScaling m;
    m.model = name;

    // One plan, five drivers: schedule/arena/params are shared so the
    // configurations differ only in pool width and intra-op mode.
    auto plan = buildEnginePlan(g);
    ThreadPool pool1(1), pool2(2), pool8(8);
    std::vector<BatchDriver> drivers;
    drivers.reserve(kConfigs);
    drivers.emplace_back(g, pool1, plan, benchBackend(), true,
                         IntraOpMode::Off);
    drivers.emplace_back(g, pool8, plan, benchBackend(), true,
                         IntraOpMode::Off);
    drivers.emplace_back(g, pool1, plan, benchBackend(), true,
                         IntraOpMode::On);
    drivers.emplace_back(g, pool2, plan, benchBackend(), true,
                         IntraOpMode::On);
    drivers.emplace_back(g, pool8, plan, benchBackend(), true,
                         IntraOpMode::On);

    // Warm every driver once: param materialization, backend prepare,
    // per-thread tuning, arena/scratch growth — one-time costs that
    // must not land in any configuration's timings.
    std::vector<std::vector<Tensor>> ref = drivers[kOff1].run(reqs);
    std::vector<std::vector<Tensor>> last[kConfigs];
    for (int c = 1; c < kConfigs; ++c)
        last[c] = drivers[c].run(reqs);

    std::vector<double> us[kConfigs];
    for (int round = 0; round < rounds; ++round) {
        for (int c = 0; c < kConfigs; ++c) {
            auto t0 = std::chrono::steady_clock::now();
            last[c] = drivers[c].run(reqs);
            us[c].push_back(std::chrono::duration<double, std::micro>(
                                std::chrono::steady_clock::now() - t0)
                                .count());
        }
    }

    for (int c = 0; c < kConfigs; ++c)
        m.medianUs[c] = median(us[c]);
    m.bitIdentical = true;
    for (int c = 1; c < kConfigs; ++c)
        m.bitIdentical = m.bitIdentical && bitIdentical(ref[0], last[c][0]);

    const RuntimeProfile &p = drivers[kOn8].profile();
    m.gemmShare = p.sumUs > 0 ? p.gemmUs() / p.sumUs : 0.0;
    return m;
}

}  // namespace

int
main(int argc, char **argv)
{
    bool smoke = false, check = false;
    std::string json;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0)
            smoke = true;
        else if (std::strcmp(argv[i], "--check") == 0)
            check = true;
        else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc)
            json = argv[++i];
    }

    std::vector<std::string> names;
    if (smoke) {
        names = {"vit_b", "gpt2", "resnet50"};
    } else {
        for (const auto &m : models::modelRegistry())
            names.push_back(m.name);
    }
    const int rounds = smoke ? 3 : 5;

    const unsigned hw = std::thread::hardware_concurrency();
    std::printf("intra-op scaling: single-request latency, off vs on "
                "(backend %s, %d rounds, interleaved, %u hw threads)%s\n",
                benchBackend().name().c_str(), rounds, hw,
                smoke ? "  [smoke]" : "");
    bench::printRule(100);
    std::printf("%-14s %9s %9s %9s %9s %9s %8s %6s %6s %5s\n", "model",
                "off@1_ms", "off@8_ms", "on@1_ms", "on@2_ms", "on@8_ms",
                "speedup", "eff", "gemm", "bits");
    bench::printRule(100);

    std::vector<ModelScaling> results;
    double off1_sum = 0, off8_sum = 0;
    int fast_gemm_models = 0;
    bool bits_ok = true;
    for (const std::string &name : names) {
        ModelScaling m = measureModel(name, rounds);
        results.push_back(m);
        off1_sum += m.medianUs[kOff1];
        off8_sum += m.medianUs[kOff8];
        if (m.gemmDominated() && m.speedup8() >= 2.0)
            ++fast_gemm_models;
        bits_ok = bits_ok && m.bitIdentical;
        std::printf("%-14s %9.2f %9.2f %9.2f %9.2f %9.2f %7.2fx %5.0f%% "
                    "%5.0f%% %5s\n",
                    m.model.c_str(), m.medianUs[kOff1] * 1e-3,
                    m.medianUs[kOff8] * 1e-3, m.medianUs[kOn1] * 1e-3,
                    m.medianUs[kOn2] * 1e-3, m.medianUs[kOn8] * 1e-3,
                    m.speedup8(), 100.0 * m.efficiency8(),
                    100.0 * m.gemmShare, m.bitIdentical ? "ok" : "DIFF");
    }
    bench::printRule(100);

    // Per-model off@8/off@1 ratios are noisy; the seam-cost bar gates
    // the aggregate, where jitter averages out.
    double off_overhead =
        off1_sum > 0 ? off8_sum / off1_sum - 1.0 : 0.0;
    std::printf("aggregate: off@1 %.1f ms, off@8 %.1f ms (%+.2f%% seam "
                "cost)  |  %d GEMM-dominated model(s) >=2x at 8 "
                "threads\n",
                off1_sum * 1e-3, off8_sum * 1e-3, 100.0 * off_overhead,
                fast_gemm_models);

    bool ok = true;
    if (check) {
        if (!bits_ok) {
            std::printf("CHECK FAILED: outputs differ across intra-op "
                        "configurations\n");
            ok = false;
        }
        if (hw < 8) {
            // A wall-clock 8-thread speedup bar is unmeasurable
            // without 8 hardware threads; the seam-cost and
            // bit-identity bars above still gate.
            std::printf("CHECK SKIPPED: speedup bar needs >=8 hardware "
                        "threads (have %u); measured %d GEMM-dominated "
                        "model(s) >=2x\n",
                        hw, fast_gemm_models);
        } else if (fast_gemm_models < 3) {
            std::printf("CHECK FAILED: only %d GEMM-dominated model(s) "
                        "reached 2x at 8 threads (need 3)\n",
                        fast_gemm_models);
            ok = false;
        }
        if (off_overhead > 0.03) {
            std::printf("CHECK FAILED: intra-op-off seam cost %.2f%% > "
                        "3%%\n",
                        100.0 * off_overhead);
            ok = false;
        }
    }

    if (!json.empty()) {
        std::ofstream f(json);
        f << "{\n  \"backend\": \"" << benchBackend().name()
          << "\",\n  \"rounds\": " << rounds
          << ",\n  \"aggregate\": {\"off1_us\": " << off1_sum
          << ", \"off8_us\": " << off8_sum
          << ", \"off_overhead\": " << off_overhead
          << ", \"fast_gemm_models\": " << fast_gemm_models
          << "},\n  \"models\": [\n";
        for (size_t i = 0; i < results.size(); ++i) {
            const ModelScaling &m = results[i];
            f << "    {\"model\": \"" << m.model << "\"";
            for (int c = 0; c < kConfigs; ++c) {
                std::string key = kConfigName[c];
                std::replace(key.begin(), key.end(), '@', '_');
                f << ", \"" << key << "_us\": " << m.medianUs[c];
            }
            f << ", \"speedup8\": " << m.speedup8()
              << ", \"efficiency8\": " << m.efficiency8()
              << ", \"gemm_share\": " << m.gemmShare
              << ", \"bit_identical\": "
              << (m.bitIdentical ? "true" : "false") << "}"
              << (i + 1 < results.size() ? ",\n" : "\n");
        }
        f << "  ]\n}\n";
        std::printf("wrote %s\n", json.c_str());
    }

    if (check)
        std::printf("check: %s\n", ok ? "PASS" : "FAIL");
    return ok ? 0 : 1;
}
