/**
 * @file
 * Hardware-counter overhead benchmark: what does `--perf` cost? For
 * every registry model the harness executes the same requests through
 * the same BatchDriver under three configurations —
 *
 *  - off:  counter sampling disabled (the shipped default);
 *  - off2: disabled again — the null experiment. Its delta against
 *          `off` is the noise floor of this host, and the CI bar on
 *          the real overhead is only meaningful if this stays ~0;
 *  - perf: CounterScope armed on every kernel scope (one grouped
 *          read() per kernel on counter-capable hosts, one clock pair
 *          on hosts where perf_event_open is denied);
 *
 * interleaving the configurations round-robin so drift hits all three
 * equally, then comparing per-config median wall times. `--check`
 * enforces the CI bars on the aggregate (all-model) medians:
 *
 *  - counters-off null delta within +/-3% (measurement sanity),
 *  - counters-on overhead <= 5% of the off baseline,
 *  - outputs bit-identical across all three configurations on every
 *    model (sampling must never perturb a single bit).
 *
 * The bars hold on BOTH the hardware path and the clock-fallback
 * path, so CI stays green on PMU-less containers — degradation is
 * part of the contract, not an excuse.
 *
 * `--json FILE` writes BENCH_perf_counters.json. `--smoke` runs a
 * fast three-model subset with fewer rounds.
 */
#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "models/registry.h"
#include "obs/perf.h"
#include "runtime/batch_driver.h"
#include "runtime/request_util.h"
#include "runtime/thread_pool.h"

using namespace ngb;

namespace {

enum Config { kOff = 0, kOff2 = 1, kPerf = 2 };
constexpr int kConfigs = 3;

struct ModelOverhead {
    std::string model;
    double medianUs[kConfigs] = {0, 0, 0};
    uint64_t scopes = 0;  ///< kernel scopes counted by the perf rounds
    bool bitIdentical = false;
};

double
median(std::vector<double> v)
{
    std::sort(v.begin(), v.end());
    return v.empty() ? 0 : v[v.size() / 2];
}

ModelOverhead
measureModel(const std::string &name, ThreadPool &pool, int requests,
             int rounds)
{
    const auto &info = models::findModel(name);
    ModelConfig mc;
    mc.batch = 1;
    mc.seqLen = 8;
    mc.testScale = 8;
    Graph g = info.build(mc);

    std::vector<std::vector<Tensor>> reqs;
    for (int r = 0; r < requests; ++r)
        reqs.push_back(
            makeRequestInputs(g, 4242 + 101 * static_cast<uint64_t>(r)));

    ModelOverhead m;
    m.model = name;

    auto plan = buildEnginePlan(g);
    BatchDriver driver(g, pool, plan, defaultBackend(), /*arena=*/true);

    // Warm up with sampling off: param materialization, backend
    // prepare, arena growth, and (on capable hosts) the lazy
    // per-thread counter-group open must all happen outside the
    // timed rounds.
    obs::setPerfEnabled(false);
    std::vector<std::vector<Tensor>> ref = driver.run(reqs);
    obs::setPerfEnabled(true);
    driver.run(reqs);
    obs::setPerfEnabled(false);

    uint64_t scopes0 =
        obs::PerfAggregator::instance().totals().total.scopes;
    std::vector<double> us[kConfigs];
    std::vector<std::vector<Tensor>> last[kConfigs];
    for (int round = 0; round < rounds; ++round) {
        for (int c = 0; c < kConfigs; ++c) {
            obs::setPerfEnabled(c == kPerf);
            auto t0 = std::chrono::steady_clock::now();
            last[c] = driver.run(reqs);
            us[c].push_back(
                std::chrono::duration<double, std::micro>(
                    std::chrono::steady_clock::now() - t0)
                    .count());
        }
    }
    obs::setPerfEnabled(false);
    m.scopes =
        obs::PerfAggregator::instance().totals().total.scopes - scopes0;

    for (int c = 0; c < kConfigs; ++c)
        m.medianUs[c] = median(us[c]);
    m.bitIdentical = true;
    for (int r = 0; r < requests; ++r)
        for (int c = 0; c < kConfigs; ++c)
            m.bitIdentical =
                m.bitIdentical && bitIdentical(ref[r], last[c][r]);
    return m;
}

}  // namespace

int
main(int argc, char **argv)
{
    bool smoke = false, check = false;
    std::string json;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0)
            smoke = true;
        else if (std::strcmp(argv[i], "--check") == 0)
            check = true;
        else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc)
            json = argv[++i];
    }

    std::vector<std::string> names;
    if (smoke) {
        names = {"vit_b", "gpt2", "resnet50"};
    } else {
        for (const auto &m : models::modelRegistry())
            names.push_back(m.name);
    }
    const int requests = smoke ? 2 : 4;
    const int rounds = smoke ? 3 : 5;

    const obs::PerfCounterStats probe =
        obs::PerfAggregator::instance().totals();
    ThreadPool pool(4);
    std::printf("hw-counter overhead: off vs off (null) vs perf sampling "
                "(backend %s, %d requests x %d rounds, interleaved)%s\n",
                defaultBackend().name().c_str(), requests, rounds,
                smoke ? "  [smoke]" : "");
    std::printf("counter source: %s\n",
                probe.measured ? "perf_event_open (grouped hw counters)"
                               : probe.status.c_str());
    bench::printRule(96);
    std::printf("%-14s %10s %10s %10s %9s %9s %9s %5s\n", "model",
                "off_ms", "off2_ms", "perf_ms", "null_ovh", "perf_ovh",
                "scopes", "bits");
    bench::printRule(96);

    std::vector<ModelOverhead> results;
    double sum[kConfigs] = {0, 0, 0};
    bool bits_ok = true;
    for (const std::string &name : names) {
        ModelOverhead m = measureModel(name, pool, requests, rounds);
        results.push_back(m);
        for (int c = 0; c < kConfigs; ++c)
            sum[c] += m.medianUs[c];
        auto ovh = [&](int c) {
            return m.medianUs[kOff] > 0
                       ? 100.0 * (m.medianUs[c] / m.medianUs[kOff] - 1.0)
                       : 0.0;
        };
        std::printf("%-14s %10.2f %10.2f %10.2f %8.1f%% %8.1f%% %9" PRIu64
                    " %5s\n",
                    m.model.c_str(), m.medianUs[kOff] * 1e-3,
                    m.medianUs[kOff2] * 1e-3, m.medianUs[kPerf] * 1e-3,
                    ovh(kOff2), ovh(kPerf), m.scopes,
                    m.bitIdentical ? "ok" : "DIFF");
        bits_ok = bits_ok && m.bitIdentical;
    }
    bench::printRule(96);

    // Per-model ratios on host hardware are noisy; the CI bars gate
    // the aggregate, where per-model jitter averages out.
    double null_ovh = sum[kOff] > 0 ? sum[kOff2] / sum[kOff] - 1.0 : 0.0;
    double perf_ovh = sum[kOff] > 0 ? sum[kPerf] / sum[kOff] - 1.0 : 0.0;
    std::printf("aggregate: off %.1f ms, off2 %.1f ms (%+.2f%%), "
                "perf %.1f ms (%+.2f%%)\n",
                sum[kOff] * 1e-3, sum[kOff2] * 1e-3, 100.0 * null_ovh,
                sum[kPerf] * 1e-3, 100.0 * perf_ovh);

    bool ok = true;
    if (check) {
        if (!bits_ok) {
            std::printf("CHECK FAILED: outputs differ across counter "
                        "configurations\n");
            ok = false;
        }
        if (null_ovh > 0.03 || null_ovh < -0.03) {
            std::printf("CHECK FAILED: off-vs-off null delta %.2f%% "
                        "outside +/-3%% — host too noisy to certify "
                        "the perf bar\n",
                        100.0 * null_ovh);
            ok = false;
        }
        if (perf_ovh > 0.05) {
            std::printf("CHECK FAILED: aggregate counter-sampling "
                        "overhead %.2f%% > 5%%\n",
                        100.0 * perf_ovh);
            ok = false;
        }
    }

    if (!json.empty()) {
        std::ofstream f(json);
        f << "{\n  \"backend\": \"" << defaultBackend().name()
          << "\",\n  \"requests\": " << requests
          << ",\n  \"rounds\": " << rounds << ",\n  \"hw_counters\": "
          << probe.hwCounters << ",\n  \"measured\": "
          << (probe.measured ? "true" : "false")
          << ",\n  \"status\": \"" << probe.status
          << "\",\n  \"aggregate\": {\"off_us\": " << sum[kOff]
          << ", \"off2_us\": " << sum[kOff2]
          << ", \"perf_us\": " << sum[kPerf]
          << ", \"null_overhead\": " << null_ovh
          << ", \"perf_overhead\": " << perf_ovh
          << "},\n  \"models\": [\n";
        for (size_t i = 0; i < results.size(); ++i) {
            const ModelOverhead &m = results[i];
            f << "    {\"model\": \"" << m.model
              << "\", \"off_us\": " << m.medianUs[kOff]
              << ", \"off2_us\": " << m.medianUs[kOff2]
              << ", \"perf_us\": " << m.medianUs[kPerf]
              << ", \"scopes\": " << m.scopes << ", \"bit_identical\": "
              << (m.bitIdentical ? "true" : "false") << "}"
              << (i + 1 < results.size() ? ",\n" : "\n");
        }
        f << "  ]\n}\n";
        std::printf("wrote %s\n", json.c_str());
    }

    if (check)
        std::printf("check: %s\n", ok ? "PASS" : "FAIL");
    return ok ? 0 : 1;
}
