/**
 * @file
 * Reproduces Table I: the non-GEMM operator inventory of selected
 * model variants with example input shapes captured from the graphs,
 * plus each operator's characteristic flags (non-linearity, dynamic
 * behaviour, reduction).
 */
#include <cstdio>
#include <map>
#include <set>

#include "bench_util.h"
#include "models/registry.h"

using namespace ngb;

namespace {

bool
hasNonLinearity(OpKind k)
{
    switch (k) {
      case OpKind::ReLU:
      case OpKind::GELU:
      case OpKind::SiLU:
      case OpKind::Sigmoid:
      case OpKind::Tanh:
      case OpKind::Erf:
      case OpKind::Exp:
      case OpKind::Log:
      case OpKind::Sqrt:
      case OpKind::Softmax:
      case OpKind::LogSoftmax:
      case OpKind::LayerNorm:
      case OpKind::BatchNorm2d:
      case OpKind::FrozenBatchNorm2d:
      case OpKind::RMSNorm:
      case OpKind::GroupNorm:
        return true;
      default:
        return false;
    }
}

bool
isDynamic(OpKind k)
{
    return k == OpKind::NMS || k == OpKind::TopK;
}

bool
isReduction(OpKind k)
{
    switch (k) {
      case OpKind::Softmax:
      case OpKind::LogSoftmax:
      case OpKind::LayerNorm:
      case OpKind::RMSNorm:
      case OpKind::GroupNorm:
      case OpKind::CumSum:
      case OpKind::TopK:
      case OpKind::AdaptiveAvgPool2d:
        return true;
      default:
        return false;
    }
}

}  // namespace

int
main()
{
    // The eight model variants Table I draws its examples from.
    const char *variants[] = {"detr",   "vit_b",   "gpt2_xl", "llama2",
                              "segformer", "mask_rcnn", "swin_b",
                              "mixtral"};

    std::printf("Table I: non-GEMM operators and characteristics\n");
    bench::printRule(96);
    std::printf("%-14s %-20s %-12s %-22s %3s %3s %3s\n", "group", "op",
                "model", "example_input_shape", "NL", "Dyn", "Red");
    bench::printRule(96);

    for (const char *name : variants) {
        const auto &info = models::findModel(name);
        ModelConfig cfg;
        cfg.batch = name == std::string("segformer") ? 2 : 1;
        cfg.seqLen = info.defaultSeqLen > 0 ? info.defaultSeqLen : 8;
        Graph g = info.build(cfg);

        // One example (the largest input) per op kind per model.
        std::map<OpKind, Shape> example;
        for (const Node &n : g.nodes()) {
            if (n.inputs.empty() || n.isGemm())
                continue;
            if (n.category() == OpCategory::Misc)
                continue;
            const Shape &in = g.shapeOf(n.inputs[0]);
            auto it = example.find(n.kind);
            if (it == example.end() || in.numel() > it->second.numel())
                example[n.kind] = in;
        }
        for (const auto &[kind, shape] : example) {
            std::printf("%-14s %-20s %-12s %-22s %3s %3s %3s\n",
                        opCategoryName(opCategoryOf(kind)).c_str(),
                        opKindName(kind).c_str(), name,
                        shape.str().c_str(),
                        hasNonLinearity(kind) ? "x" : "",
                        isDynamic(kind) ? "x" : "",
                        isReduction(kind) ? "x" : "");
        }
        bench::printRule(96);
    }
    return 0;
}
