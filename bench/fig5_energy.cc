/**
 * @file
 * Reproduces Figure 5: end-to-end inference GPU energy for every
 * Table II model at batch 1 and 8 on the data-center (CPU+GPU)
 * configuration.
 *
 * Beside the modeled joules, a measured-estimate column executes each
 * model (batch 1, scale 16) through the BatchDriver and prices the
 * run from what the host actually reports, best source first:
 *
 *  - "rapl":    delta of /sys/class/powercap intel-rapl package
 *               energy across the run (real measured joules);
 *  - "cycles":  hardware cycle count x a per-category energy weight
 *               (nJ/cycle) when perf counters are live but RAPL is
 *               not readable;
 *  - "wall*15W": wall clock x an assumed package draw when neither
 *               source exists — an order-of-magnitude label, printed
 *               as such, never silently passed off as measured.
 */
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "models/registry.h"
#include "obs/perf.h"
#include "platform/perf_events.h"
#include "runtime/batch_driver.h"
#include "runtime/request_util.h"
#include "runtime/thread_pool.h"

using namespace ngb;

namespace {

/**
 * Energy weight per cycle by category, nanojoules. GEMM kernels keep
 * the vector units saturated (high switching activity); memory and
 * reshape traffic mostly waits on the fabric. Coarse, but it turns a
 * counter stream into a comparable per-model figure.
 */
double
categoryNjPerCycle(OpCategory c)
{
    switch (c) {
    case OpCategory::Gemm:
        return 1.4;
    case OpCategory::Memory:
        return 0.5;
    case OpCategory::Embedding:
        return 0.6;
    default:
        return 0.9;  // element-wise / normalization / logit compute
    }
}

struct MeasuredEnergy {
    double joules = 0;
    double wallUs = 0;
    const char *source = "none";
};

MeasuredEnergy
measureModel(const std::string &name, ThreadPool &pool)
{
    const auto &info = models::findModel(name);
    ModelConfig mc;
    mc.batch = 1;
    mc.seqLen = 8;
    mc.testScale = 16;
    Graph g = info.build(mc);

    std::vector<std::vector<Tensor>> reqs;
    for (int r = 0; r < 2; ++r)
        reqs.push_back(
            makeRequestInputs(g, 5 + 17 * static_cast<uint64_t>(r)));

    BatchDriver driver(g, pool, buildEnginePlan(g), defaultBackend(),
                       /*arena=*/true);
    driver.run(reqs);  // warm-up outside the energy window

    perf::RaplReading r0 = perf::readRaplJoules();
    driver.run(reqs);
    perf::RaplReading r1 = perf::readRaplJoules();
    const RuntimeProfile &p = driver.profile();

    MeasuredEnergy e;
    e.wallUs = p.wallUs;
    if (r0.ok && r1.ok && r1.joules >= r0.joules) {
        e.joules = r1.joules - r0.joules;
        e.source = "rapl";
    } else if (p.perf.measured) {
        double nj = 0;
        for (size_t c = 0; c < obs::kPerfCategories; ++c)
            nj += static_cast<double>(p.perf.byCategory[c].cycles) *
                  categoryNjPerCycle(static_cast<OpCategory>(c));
        e.joules = nj * 1e-9;
        e.source = "cycles";
    } else {
        e.joules = p.wallUs * 1e-6 * 15.0;  // assumed 15 W package
        e.source = "wall*15W";
    }
    return e;
}

}  // namespace

int
main()
{
    std::printf("Figure 5: GPU energy (J), Platform A, CPU+GPU\n");
    bench::printRule(92);
    std::printf("%-14s %-6s %12s %12s %12s %14s %9s\n", "model", "task",
                "b1 (J)", "b8 (J)", "latency b8", "measured (J)",
                "source");

    bool was_on = obs::perfEnabled();
    obs::setPerfEnabled(true);
    ThreadPool pool(4);
    for (const std::string &name : models::paperModelNames()) {
        const auto &info = models::findModel(name);
        BenchConfig c;
        c.model = name;
        c.batch = 1;
        ProfileReport r1 = Bench::run(c);
        c.batch = 8;
        ProfileReport r8 = Bench::run(c);
        MeasuredEnergy me = measureModel(name, pool);
        std::printf("%-14s %-6s %12.3f %12.3f %10.2fms %14.6f %9s\n",
                    name.c_str(), info.task.c_str(),
                    r1.energy.gpuJoules, r8.energy.gpuJoules,
                    r8.totalMs(), me.joules, me.source);
    }
    obs::setPerfEnabled(was_on);

    std::printf("\nPaper shape: energy grows with model size and batch;\n"
                "NLP giants (llama2, mixtral) and MaskFormer dominate.\n"
                "Measured column: scale-16 host execution, so magnitudes\n"
                "are not comparable to the modeled full-size joules —\n"
                "the per-model ORDERING is the reproducible signal.\n");
    return 0;
}
