/**
 * @file
 * Reproduces Figure 5: end-to-end inference GPU energy for every
 * Table II model at batch 1 and 8 on the data-center (CPU+GPU)
 * configuration.
 */
#include <cstdio>

#include "bench_util.h"
#include "models/registry.h"

using namespace ngb;

int
main()
{
    std::printf("Figure 5: GPU energy (J), Platform A, CPU+GPU\n");
    bench::printRule(64);
    std::printf("%-14s %-6s %12s %12s %12s\n", "model", "task", "b1 (J)",
                "b8 (J)", "latency b8");
    for (const std::string &name : models::paperModelNames()) {
        const auto &info = models::findModel(name);
        BenchConfig c;
        c.model = name;
        c.batch = 1;
        ProfileReport r1 = Bench::run(c);
        c.batch = 8;
        ProfileReport r8 = Bench::run(c);
        std::printf("%-14s %-6s %12.3f %12.3f %10.2fms\n", name.c_str(),
                    info.task.c_str(), r1.energy.gpuJoules,
                    r8.energy.gpuJoules, r8.totalMs());
    }
    std::printf("\nPaper shape: energy grows with model size and batch;\n"
                "NLP giants (llama2, mixtral) and MaskFormer dominate.\n");
    return 0;
}
