#!/usr/bin/env python3
"""Validate ngb metrics snapshots (JSON and/or Prometheus text).

The serve loop republishes both files every sampler tick (atomically,
via rename), so whatever a scraper reads must ALWAYS satisfy the
invariants below — a violation means either a torn write escaped the
publish path or an aggregation bug shipped a nonsense snapshot.

JSON snapshot checks:
 1. parses, with the {"counters", "gauges", "histograms"} envelope;
 2. every counter is a non-negative finite number (counters only ever
    increment);
 3. every gauge is a finite number;
 4. every histogram has count >= 0, sum/min/max finite, and its
    quantile estimates ordered: min <= p50 <= p90 <= p95 <= p99
    <= max (within a rounding epsilon — the estimates interpolate
    inside log-spaced buckets, the bounds do not).

Prometheus text checks:
 1. every sample line is `name value` or `name{quantile="q"} value`
    with a legal metric name and a finite float value;
 2. every emitted metric family is preceded by its # TYPE line, and
    the type is counter | gauge | summary;
 3. counter samples are non-negative;
 4. summary quantiles are ordered per family and each family carries
    its _sum and _count samples.

Exit status 0 when every given file validates; 1 with a diagnostic
otherwise.

Usage: check_metrics.py [--json FILE] [--prom FILE]
"""
import argparse
import json
import math
import re
import sys

# Quantile estimates interpolate within log-spaced buckets and values
# are printed with 3 fractional digits, so ordering may wobble by one
# rounding step around bucket edges.
EPS = 0.002

NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
SAMPLE_RE = re.compile(
    r'^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)'
    r'(?:\{quantile="(?P<q>[0-9.]+)"\})?'
    r" (?P<value>\S+)$"
)


def fail(msg):
    print(f"check_metrics: FAIL: {msg}")
    sys.exit(1)


def finite(v):
    return isinstance(v, (int, float)) and math.isfinite(v)


def check_json(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path}: {e}")

    for section in ("counters", "gauges", "histograms"):
        if section not in doc:
            fail(f"{path}: missing {section!r} section")

    for name, v in doc["counters"].items():
        if not finite(v) or v < 0:
            fail(f"{path}: counter {name} = {v!r} (want >= 0)")
    for name, v in doc["gauges"].items():
        if not finite(v):
            fail(f"{path}: gauge {name} = {v!r} (want finite number)")

    for name, h in doc["histograms"].items():
        for key in ("count", "sum", "min", "max", "p50", "p90", "p95",
                    "p99"):
            if key not in h or not finite(h[key]):
                fail(f"{path}: histogram {name} missing/bad {key!r}")
        if h["count"] < 0:
            fail(f"{path}: histogram {name} count {h['count']} < 0")
        if h["count"] > 0:
            chain = [h["min"], h["p50"], h["p90"], h["p95"], h["p99"],
                     h["max"]]
            for lo, hi in zip(chain, chain[1:]):
                if lo > hi + EPS:
                    fail(
                        f"{path}: histogram {name} quantiles not "
                        f"monotone: {chain}"
                    )
    n = sum(len(doc[s]) for s in ("counters", "gauges", "histograms"))
    print(f"check_metrics: {path}: OK ({n} series)")


def check_prom(path):
    try:
        with open(path) as f:
            lines = f.read().splitlines()
    except OSError as e:
        fail(f"{path}: {e}")

    types = {}          # family -> counter|gauge|summary
    quantiles = {}      # family -> [(q, value)...]
    suffixed = set()    # families that emitted _sum / _count
    for i, line in enumerate(lines, 1):
        if not line.strip():
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4:
                fail(f"{path}:{i}: malformed TYPE line: {line!r}")
            _, _, fam, kind = parts
            if not NAME_RE.match(fam):
                fail(f"{path}:{i}: bad metric name {fam!r}")
            if kind not in ("counter", "gauge", "summary"):
                fail(f"{path}:{i}: unexpected metric type {kind!r}")
            types[fam] = kind
            continue
        if line.startswith("#"):
            continue
        m = SAMPLE_RE.match(line)
        if not m:
            fail(f"{path}:{i}: unparseable sample line: {line!r}")
        name = m.group("name")
        try:
            value = float(m.group("value"))
        except ValueError:
            fail(f"{path}:{i}: non-numeric value in {line!r}")
        if not math.isfinite(value):
            fail(f"{path}:{i}: non-finite value in {line!r}")

        fam = name
        for suffix in ("_sum", "_count"):
            if name.endswith(suffix) and name[: -len(suffix)] in types:
                fam = name[: -len(suffix)]
                suffixed.add(fam)
        if fam not in types:
            fail(f"{path}:{i}: sample {name} has no preceding TYPE")
        kind = types[fam]
        if kind == "counter" and value < 0:
            fail(f"{path}:{i}: counter {name} = {value} (want >= 0)")
        if m.group("q") is not None:
            if kind != "summary":
                fail(f"{path}:{i}: quantile label on non-summary {fam}")
            quantiles.setdefault(fam, []).append(
                (float(m.group("q")), value)
            )

    for fam, kind in types.items():
        if kind != "summary":
            continue
        if fam not in suffixed:
            fail(f"{path}: summary {fam} missing _sum/_count samples")
        qs = sorted(quantiles.get(fam, []))
        for (qa, va), (qb, vb) in zip(qs, qs[1:]):
            if va > vb + EPS:
                fail(
                    f"{path}: summary {fam} quantiles not monotone: "
                    f"q{qa}={va} > q{qb}={vb}"
                )
    print(f"check_metrics: {path}: OK ({len(types)} families)")


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--json", help="metrics registry JSON snapshot")
    ap.add_argument("--prom", help="Prometheus text snapshot")
    args = ap.parse_args()
    if not args.json and not args.prom:
        fail("nothing to check: pass --json and/or --prom")
    if args.json:
        check_json(args.json)
    if args.prom:
        check_prom(args.prom)


if __name__ == "__main__":
    main()
