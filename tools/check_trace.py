#!/usr/bin/env python3
"""Validate a measured ngb Chrome/Perfetto trace.

Checks, in order:

 1. the file parses as JSON and has the Chrome trace-event envelope
    ({"traceEvents": [...]});
 2. every event carries the mandatory keys for its phase;
 3. complete ("X") events nest properly per (pid, tid) track: spans on
    one thread's track must form a forest — a span that overlaps its
    predecessor's interval without being contained by it would render
    as garbage in the trace viewer and indicates broken span scoping
    (queue residencies, which legitimately overlap, are exported as
    async "b"/"e" pairs and checked for id-pairing instead);
 4. async begin/end events pair up per (cat, id).

Exit status 0 on a valid trace; 1 with a diagnostic otherwise.

Usage: check_trace.py FILE [--min-events N] [--require-request-spans]
"""
import argparse
import collections
import json
import sys

# Timestamps are exported with 3 fractional digits (microseconds), so
# two adjacent spans can disagree by one rounding step without being
# mis-nested.
EPS_US = 0.002


def fail(msg):
    print(f"check_trace: FAIL: {msg}")
    sys.exit(1)


def check_nesting(tid, spans):
    """spans: list of (ts, end) sorted by (ts, -end)."""
    stack = []
    for ts, end in spans:
        while stack and stack[-1] <= ts + EPS_US:
            stack.pop()
        if stack and end > stack[-1] + EPS_US:
            fail(
                f"track {tid}: span [{ts}, {end}] overlaps its "
                f"enclosing span ending at {stack[-1]} without nesting"
            )
        stack.append(end)


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("trace")
    ap.add_argument("--min-events", type=int, default=1)
    ap.add_argument(
        "--require-request-spans",
        action="store_true",
        help="demand per-request trace ids (a serve-mode trace)",
    )
    args = ap.parse_args()

    try:
        with open(args.trace) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{args.trace}: {e}")

    if not isinstance(doc, dict) or "traceEvents" not in doc:
        fail("missing traceEvents envelope")
    events = doc["traceEvents"]
    if not isinstance(events, list):
        fail("traceEvents is not a list")
    if len(events) < args.min_events:
        fail(f"only {len(events)} events (need >= {args.min_events})")

    by_track = collections.defaultdict(list)
    async_open = collections.Counter()
    trace_ids = set()
    for i, ev in enumerate(events):
        ph = ev.get("ph")
        for key in ("name", "ph", "pid", "tid"):
            if key not in ev:
                fail(f"event {i} ({ph}) missing {key!r}")
        if ph == "X":
            if "ts" not in ev or "dur" not in ev:
                fail(f"event {i} (X) missing ts/dur")
            if ev["dur"] < 0:
                fail(f"event {i} has negative dur {ev['dur']}")
            by_track[(ev["pid"], ev["tid"])].append(
                (ev["ts"], ev["ts"] + ev["dur"])
            )
            tid = ev.get("args", {}).get("trace_id")
            if tid is not None:
                trace_ids.add(tid)
        elif ph in ("b", "e"):
            if "id" not in ev:
                fail(f"event {i} ({ph}) missing id")
            key = (ev.get("cat"), ev["id"])
            async_open[key] += 1 if ph == "b" else -1
            if async_open[key] < 0:
                fail(f"async end before begin for {key}")
        elif ph == "M":
            continue
        else:
            fail(f"event {i}: unexpected phase {ph!r}")

    for key, open_count in async_open.items():
        if open_count != 0:
            fail(f"unbalanced async span {key}: {open_count} unclosed")

    for (pid, tid), spans in by_track.items():
        spans.sort(key=lambda s: (s[0], -s[1]))
        check_nesting(f"{pid}/{tid}", spans)

    if args.require_request_spans and not trace_ids:
        fail("no per-request trace ids found in span args")

    # Ring-buffer overflow is exported as trace metadata rather than
    # silently truncating: a nonzero drop count means the trace is
    # incomplete (raise the ring size or shorten the run). Warn, don't
    # fail — a truncated trace is still a valid trace.
    dropped = doc.get("otherData", {}).get("dropped_spans", 0)
    if dropped:
        by_thread = doc["otherData"].get("dropped_by_thread", {})
        detail = ", ".join(
            f"{name}={n}" for name, n in sorted(by_thread.items())
        )
        print(
            f"check_trace: WARNING: {dropped} spans dropped by full "
            f"ring buffers ({detail or 'no per-thread detail'}); "
            f"the trace is incomplete"
        )

    n_tracks = len(by_track)
    print(
        f"check_trace: OK: {len(events)} events, {n_tracks} X-span "
        f"tracks, {len(trace_ids)} request trace ids, "
        f"{dropped} dropped"
    )


if __name__ == "__main__":
    main()
