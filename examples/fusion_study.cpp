/**
 * @file
 * Domain example (computer vision serving): decide which deployment
 * flow to serve a detection model with, reproducing the Section IV-B
 * workflow — compare PyTorch / TorchInductor / TensorRT, inspect what
 * fusion did, and find the operators that remain hot afterwards.
 */
#include <iostream>

#include "core/bench.h"

using namespace ngb;

int
main(int argc, char **argv)
{
    std::string model = argc > 1 ? argv[1] : "detr";

    std::cout << "Fusion study for " << model
              << " (Platform A, batch 1)\n\n";

    ProfileReport best;
    std::string best_flow;
    for (const char *flow : {"pytorch", "inductor", "tensorrt"}) {
        BenchConfig c;
        c.model = model;
        c.flow = flow;
        ProfileReport r = Bench::run(c);
        std::cout << flow << ":\n  total " << r.totalMs()
                  << " ms, non-GEMM " << r.nonGemmPct() << "% ("
                  << r.nonGemmUs / 1000 << " ms)\n";
        if (r.fusionStats.fusedNonGemm > 0) {
            std::cout << "  fusion rate "
                      << 100.0 * r.fusionStats.fusionRate() << "% ("
                      << r.fusionStats.fusedWithGemm
                      << " non-GEMM ops folded into GEMM kernels, "
                      << r.fusionStats.fusedNonGemm -
                             r.fusionStats.fusedWithGemm
                      << " into point-wise chains)\n";
        }
        if (best_flow.empty() || r.totalUs < best.totalUs) {
            best = r;
            best_flow = flow;
        }
    }

    std::cout << "\nBest flow: " << best_flow << ". Hot spots that "
              << "fusion did NOT remove:\n";
    for (const OpProfile &op : best.topOps(8)) {
        if (op.category == OpCategory::Gemm)
            continue;
        std::cout << "  " << op.label << " ["
                  << opCategoryName(op.category) << "] " << op.us
                  << " us\n";
    }
    std::cout << "\nPaper conclusion (Sec. IV-B): operator fusion "
                 "mitigates but does not\neliminate the non-GEMM "
                 "bottleneck; its effectiveness depends on whether\n"
                 "normalizations can fold into GEMM kernels "
                 "(CONV+BN+RELU) or only into\nother non-GEMM chains.\n";
    return 0;
}
