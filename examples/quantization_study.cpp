/**
 * @file
 * Domain example (LLM serving): should you deploy Llama3-8B with
 * LLM.int8()? Reproduces the Section IV-C analysis — quantization
 * speeds up the GEMMs but shifts the bottleneck into Q/DQ and
 * element-wise work, and the effect worsens with sequence length.
 */
#include <cstdio>

#include "core/bench.h"

using namespace ngb;

int
main()
{
    std::printf("LLM.int8() deployment study: Llama3-8B on A100\n\n");
    std::printf("%8s | %10s %9s | %10s %9s %6s | %9s\n", "seq", "fp16_ms",
                "fp16_ng%", "int8_ms", "int8_ng%", "QDQ%", "verdict");
    for (int64_t seq : {256, 512, 1024, 2048, 4096, 8192}) {
        BenchConfig c;
        c.model = "llama3";
        c.seqLen = seq;
        ProfileReport fp = Bench::run(c);
        c.quantize = true;
        ProfileReport q = Bench::run(c);
        const char *verdict =
            q.totalUs < fp.totalUs ? "quantize" : "keep fp16";
        std::printf("%8ld | %10.1f %8.1f%% | %10.1f %8.1f%% %5.1f%% | %9s\n",
                    static_cast<long>(seq), fp.totalMs(), fp.nonGemmPct(),
                    q.totalMs(), q.nonGemmPct(),
                    q.categoryPct(OpCategory::QDQ), verdict);
    }

    std::printf("\nWhere does the int8 time go at seq 2048?\n");
    BenchConfig c;
    c.model = "llama3";
    c.seqLen = 2048;
    c.quantize = true;
    ProfileReport q = Bench::run(c);
    for (const auto &[cat, us] : q.usByCategory)
        std::printf("  %-14s %8.2f ms (%4.1f%%)\n",
                    opCategoryName(cat).c_str(), us / 1000,
                    q.categoryPct(cat));

    std::printf("\nTakeaway (paper Sec. IV-C): GEMM gets faster but the\n"
                "dequantize/requantize traffic around every non-GEMM op\n"
                "makes non-GEMM the dominant cost — the longer the\n"
                "sequence, the worse the element-wise share.\n");
    return 0;
}
