/**
 * @file
 * Quickstart: characterize one model's GEMM / non-GEMM latency split
 * with three lines of library code, then drill into the reports.
 *
 *   ./examples/quickstart [model] [flow] [platform]
 *   e.g. ./examples/quickstart swin_b tensorrt A
 */
#include <fstream>
#include <iostream>

#include "core/bench.h"
#include "models/registry.h"

using namespace ngb;

int
main(int argc, char **argv)
{
    BenchConfig cfg;
    cfg.model = argc > 1 ? argv[1] : "gpt2_xl";
    cfg.flow = argc > 2 ? argv[2] : "pytorch";
    cfg.platform = argc > 3 ? argv[3] : "A";

    // --- The three-line API ------------------------------------------------
    ProfileReport report = Bench::run(cfg);
    printReport(report, std::cout);

    // --- Workload report (Section III-C) ------------------------------------
    const GraphStats &ws = report.graphStats;
    std::cout << "\nWorkload report:\n"
              << "  operators: " << ws.numOps << " (" << ws.numGemmOps
              << " GEMM, " << ws.numNonGemmOps << " non-GEMM)\n"
              << "  parameters: " << ws.totalParams / 1000000.0 << " M\n"
              << "  GFLOPs: " << ws.totalFlops / 1e9 << " ("
              << 100.0 * ws.gemmFlops / ws.totalFlops << "% in GEMMs)\n";

    // --- Non-GEMM report -----------------------------------------------------
    std::cout << "\nNon-GEMM report:\n  dominant group: "
              << opCategoryName(report.dominantNonGemmCategory()) << " ("
              << report.categoryPct(report.dominantNonGemmCategory())
              << "% of latency)\n  slowest kernels:\n";
    for (const OpProfile &op : report.topOps(5))
        std::cout << "    " << op.label << " ["
                  << opCategoryName(op.category) << "] " << op.us
                  << " us (x" << op.kernelCount << " kernels)\n";

    // --- CSV outputs, like the original artifact's summary directory --------
    std::ofstream ops_csv("nongemm_ops.csv");
    writeOpCsv(report, ops_csv);
    std::ofstream cat_csv("nongemm_categories.csv");
    writeCategoryCsv(report, cat_csv);
    std::cout << "\nWrote nongemm_ops.csv and nongemm_categories.csv\n";

    // List what else can be profiled.
    std::cout << "\nAvailable models:";
    for (const auto &m : models::modelRegistry())
        std::cout << " " << m.name;
    std::cout << "\nAvailable flows: pytorch inductor ort tensorrt\n";
    return 0;
}
