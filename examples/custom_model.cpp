/**
 * @file
 * Registering a custom model, mirroring the original artifact's
 * ModelProfile extension point: build any operator graph with
 * GraphBuilder, then characterize it under every deployment flow and
 * execute it numerically on the host.
 *
 * The example model is a small ConvNeXt-style block stack — an
 * architecture *not* in the paper's registry — demonstrating that the
 * framework profiles arbitrary operator graphs.
 */
#include <iostream>

#include "deploy/flow.h"
#include "graph/builder.h"
#include "graph/executor.h"
#include "platform/cost_model.h"
#include "profiler/profile_report.h"

using namespace ngb;

namespace {

/** A ConvNeXt-ish block: DWConv7x7 -> LN -> 1x1 -> GELU -> 1x1 + res. */
Value
convNextBlock(GraphBuilder &b, Value x, int64_t c, const std::string &p)
{
    const Shape &s = b.graph().shapeOf(x);
    Value v = b.conv2d(x, c, 7, 1, 3, static_cast<int>(c), true,
                       p + ".dwconv");
    // channels-last LayerNorm: permute -> LN -> permute back.
    v = b.permute(v, {0, 2, 3, 1});
    v = b.contiguous(v);
    Value t = b.view(v, Shape{s[0] * s[2] * s[3], c});
    t = b.layerNorm(t);
    t = b.linear(t, 4 * c, true, p + ".pw1");
    t = b.gelu(t);
    t = b.linear(t, c, true, p + ".pw2");
    Value back = b.view(t, Shape{s[0], s[2], s[3], c});
    back = b.permute(back, {0, 3, 1, 2});
    back = b.contiguous(back);
    return b.add(x, back);
}

Graph
buildConvNextTiny(int64_t img, int64_t width)
{
    Graph g;
    g.setName("convnext-custom");
    GraphBuilder b(g);
    Value x = b.input(Shape{1, 3, img, img}, DType::F32, "pixels");
    Value v = b.conv2d(x, width, 4, 4, 0, 1, true, "stem");
    for (int i = 0; i < 3; ++i)
        v = convNextBlock(b, v, width, "block" + std::to_string(i));
    v = b.adaptiveAvgPool2d(v, 1, 1);
    v = b.reshape(v, Shape{1, width});
    Value logits = b.linear(v, 1000, true, "head");
    b.output(logits);
    return g;
}

}  // namespace

int
main()
{
    Graph g = buildConvNextTiny(224, 96);
    GraphStats ws = g.stats();
    std::cout << "Custom model: " << g.name() << " — " << ws.numOps
              << " ops, " << ws.totalParams / 1e6 << " M params, "
              << ws.totalFlops / 1e9 << " GFLOPs\n\n";

    // Characterize under every deployment flow on Platform A.
    PlatformSpec platform = platformA();
    CostModel cm(platform);
    for (const char *flow_name :
         {"pytorch", "inductor", "ort", "tensorrt"}) {
        auto flow = makeFlow(flow_name);
        ExecutionPlan plan = flow->plan(g, {true, false});
        auto timings = cm.priceAll(plan);
        ProfileReport r = aggregateProfile(plan, timings, platform);
        std::cout << flow_name << ": " << r.totalMs() << " ms, non-GEMM "
                  << r.nonGemmPct() << "%, dominant "
                  << opCategoryName(r.dominantNonGemmCategory()) << "\n";
    }

    // Execute a miniature version concretely on the host.
    Graph tiny = buildConvNextTiny(32, 16);
    Executor ex(tiny);
    auto out = ex.run({Tensor::randn(Shape{1, 3, 32, 32}, 7)});
    std::cout << "\nConcrete execution of the 32px variant: logits "
              << out[0].shape().str() << ", logits[0..3] = "
              << out[0].flatAt(0) << " " << out[0].flatAt(1) << " "
              << out[0].flatAt(2) << "\n";
    return 0;
}
